//! Systematic per-rule unit tests, one section per protocol rule, driving
//! the state machine directly (no runtime) so each branch is pinned.

use dlm_core::{
    AcquireError, Effect, HierNode, Message, Mode, NodeId, ProtocolConfig, QueuedRequest,
    ReleaseError, UpgradeError,
};

fn paper() -> ProtocolConfig {
    ProtocolConfig::paper()
}

fn sends(effects: &[Effect]) -> usize {
    effects.iter().filter(|e| e.is_send()).count()
}

fn granted(effects: &[Effect]) -> bool {
    effects.iter().any(|e| matches!(e, Effect::Granted { .. }))
}

mod rule2_request_sending {
    use super::*;

    #[test]
    fn token_node_self_grants_anything_compatible() {
        for mode in [Mode::IntentRead, Mode::Read, Mode::Upgrade, Mode::Write] {
            let mut n = HierNode::with_token(NodeId(0), paper());
            let eff = n.on_acquire(mode).unwrap();
            assert!(granted(&eff), "{mode}");
            assert_eq!(sends(&eff), 0, "{mode}: token self-grant is free");
        }
    }

    #[test]
    fn non_token_with_sufficient_owned_admits_locally() {
        // Owned R via a copyset child; acquiring R and IR is free.
        let mut n = HierNode::new(NodeId(1), NodeId(0), paper());
        // Simulate a past grant: receive a grant for R, then release while a
        // child keeps R alive. Simplest: become a granter via messages.
        let mut token = HierNode::with_token(NodeId(0), paper());
        let eff = n.on_acquire(Mode::Read).unwrap();
        assert_eq!(sends(&eff), 1);
        let eff = token.on_message(
            NodeId(1),
            Message::Request(QueuedRequest::plain(NodeId(1), Mode::Read)),
        );
        assert_eq!(sends(&eff), 1, "copy grant");
        let eff = n.on_message(NodeId(0), Message::Grant { mode: Mode::Read });
        assert!(granted(&eff));
        // n now holds R; a grandchild asks for IR; n grants it itself.
        let eff = n.on_message(
            NodeId(2),
            Message::Request(QueuedRequest::plain(NodeId(2), Mode::IntentRead)),
        );
        assert!(matches!(
            eff.as_slice(),
            [Effect::Send {
                to: NodeId(2),
                message: Message::Grant {
                    mode: Mode::IntentRead
                }
            }]
        ));
        // n releases; still owns IR through node 2 → re-acquiring IR is free.
        let eff = n.on_release().unwrap();
        assert_eq!(sends(&eff), 1, "owned weakened R->IR: release to parent");
        let eff = n.on_acquire(Mode::IntentRead).unwrap();
        assert!(granted(&eff));
        assert_eq!(sends(&eff), 0, "Rule 2 free fast path");
    }

    #[test]
    fn incompatible_owned_forces_a_request() {
        // Node owns IW via child; wants R (incompatible) → must send.
        let mut n = HierNode::with_token(NodeId(0), paper());
        n.on_acquire(Mode::IntentWrite).unwrap();
        // Hand the token away so n is a plain owner.
        let eff = n.on_message(
            NodeId(1),
            Message::Request(QueuedRequest::plain(NodeId(1), Mode::Write)),
        );
        // W is incompatible with IW: queued, not sent.
        assert_eq!(sends(&eff), 0);
        assert_eq!(n.queue_len(), 1);
    }
}

mod rule3_granting {
    use super::*;

    #[test]
    fn token_copy_grants_when_owned_dominates() {
        let mut t = HierNode::with_token(NodeId(0), paper());
        t.on_acquire(Mode::Read).unwrap();
        let eff = t.on_message(
            NodeId(1),
            Message::Request(QueuedRequest::plain(NodeId(1), Mode::IntentRead)),
        );
        assert!(matches!(
            eff.as_slice(),
            [Effect::Send {
                message: Message::Grant { .. },
                ..
            }]
        ));
        assert!(t.has_token(), "copy grant keeps the token");
        assert_eq!(t.copyset().get(&NodeId(1)), Some(&Mode::IntentRead));
    }

    #[test]
    fn token_transfers_for_stronger_compatible_mode() {
        let mut t = HierNode::with_token(NodeId(0), paper());
        t.on_acquire(Mode::IntentRead).unwrap();
        let eff = t.on_message(
            NodeId(1),
            Message::Request(QueuedRequest::plain(NodeId(1), Mode::Read)),
        );
        assert!(matches!(
            eff.as_slice(),
            [Effect::Send {
                message: Message::Token { .. },
                ..
            }]
        ));
        assert!(!t.has_token());
        assert_eq!(t.parent(), Some(NodeId(1)));
    }

    #[test]
    fn idle_token_copy_grants_shared_but_transfers_exclusive() {
        for (mode, expect_transfer) in [
            (Mode::IntentRead, false),
            (Mode::Read, false),
            (Mode::IntentWrite, false),
            (Mode::Upgrade, true),
            (Mode::Write, true),
        ] {
            let mut t = HierNode::with_token(NodeId(0), paper());
            let eff = t.on_message(
                NodeId(1),
                Message::Request(QueuedRequest::plain(NodeId(1), mode)),
            );
            let transferred = matches!(
                eff.as_slice(),
                [Effect::Send {
                    message: Message::Token { .. },
                    ..
                }]
            );
            assert_eq!(transferred, expect_transfer, "{mode}");
        }
    }

    #[test]
    fn literal_rule_3_2_always_transfers_from_idle() {
        for mode in [Mode::IntentRead, Mode::Read, Mode::IntentWrite] {
            let mut t = HierNode::with_token(NodeId(0), paper().literal_rule_3_2());
            let eff = t.on_message(
                NodeId(1),
                Message::Request(QueuedRequest::plain(NodeId(1), mode)),
            );
            assert!(
                matches!(
                    eff.as_slice(),
                    [Effect::Send {
                        message: Message::Token { .. },
                        ..
                    }]
                ),
                "{mode}"
            );
        }
    }

    #[test]
    fn child_grant_disabled_by_ablation() {
        let cfg = paper().without(dlm_core::Ablation::ChildGrants);
        let mut n = HierNode::new(NodeId(1), NodeId(0), cfg);
        // Even with owned R (via forged grant path), a non-token node must
        // forward rather than grant.
        let _ = n.on_acquire(Mode::Read).unwrap();
        let _ = n.on_message(NodeId(0), Message::Grant { mode: Mode::Read });
        let eff = n.on_message(
            NodeId(2),
            Message::Request(QueuedRequest::plain(NodeId(2), Mode::IntentRead)),
        );
        assert!(matches!(
            eff.as_slice(),
            [Effect::Send {
                to: NodeId(0),
                message: Message::Request(_)
            }]
        ));
    }
}

mod rule4_queue_or_forward {
    use super::*;

    #[test]
    fn pending_node_queues_same_mode() {
        let mut n = HierNode::new(NodeId(1), NodeId(0), paper());
        n.on_acquire(Mode::Read).unwrap();
        let eff = n.on_message(
            NodeId(2),
            Message::Request(QueuedRequest::plain(NodeId(2), Mode::Read)),
        );
        assert_eq!(sends(&eff), 0, "Table 1(c)[R][R] = Q");
        assert_eq!(n.queue_len(), 1);
    }

    #[test]
    fn pending_node_forwards_compatible_other_mode() {
        let mut n = HierNode::new(NodeId(1), NodeId(0), paper());
        n.on_acquire(Mode::Read).unwrap();
        let eff = n.on_message(
            NodeId(2),
            Message::Request(QueuedRequest::plain(NodeId(2), Mode::IntentRead)),
        );
        assert_eq!(sends(&eff), 1, "Table 1(c)[R][IR] = F");
        assert_eq!(n.queue_len(), 0);
    }

    #[test]
    fn local_queueing_ablation_always_forwards() {
        let cfg = paper().without(dlm_core::Ablation::LocalQueueing);
        let mut n = HierNode::new(NodeId(1), NodeId(0), cfg);
        n.on_acquire(Mode::Read).unwrap();
        let eff = n.on_message(
            NodeId(2),
            Message::Request(QueuedRequest::plain(NodeId(2), Mode::Read)),
        );
        assert_eq!(sends(&eff), 1);
        assert_eq!(n.queue_len(), 0);
    }
}

mod rule5_release {
    use super::*;

    /// A forged stale release must be dropped (ack filter): the copyset
    /// entry created by an in-flight grant survives.
    #[test]
    fn stale_release_is_dropped() {
        let mut t = HierNode::with_token(NodeId(0), paper());
        t.on_acquire(Mode::Read).unwrap();
        // Grant node 1 IR (grants_sent[1] becomes 1).
        let _ = t.on_message(
            NodeId(1),
            Message::Request(QueuedRequest::plain(NodeId(1), Mode::IntentRead)),
        );
        assert_eq!(t.copyset().get(&NodeId(1)), Some(&Mode::IntentRead));
        // A release with ack=0 predates that grant: stale, dropped.
        let _ = t.on_message(
            NodeId(1),
            Message::Release {
                new_owned: Mode::NoLock,
                ack: 0,
            },
        );
        assert_eq!(
            t.copyset().get(&NodeId(1)),
            Some(&Mode::IntentRead),
            "stale release must not clobber the fresh grant"
        );
        // The up-to-date release (ack=1) is applied.
        let _ = t.on_message(
            NodeId(1),
            Message::Release {
                new_owned: Mode::NoLock,
                ack: 1,
            },
        );
        assert!(t.copyset().is_empty());
    }

    #[test]
    fn eager_release_ablation_always_notifies() {
        let cfg = paper().without(dlm_core::Ablation::ReleaseSuppression);
        let mut t = HierNode::with_token(NodeId(0), cfg);
        t.on_acquire(Mode::Read).unwrap();
        let _ = t.on_message(
            NodeId(1),
            Message::Request(QueuedRequest::plain(NodeId(1), Mode::IntentRead)),
        );
        // Move the node under test into a child role: build a child directly.
        let mut c = HierNode::new(NodeId(1), NodeId(0), cfg);
        let _ = c.on_acquire(Mode::IntentRead).unwrap();
        let _ = c.on_message(
            NodeId(0),
            Message::Grant {
                mode: Mode::IntentRead,
            },
        );
        // Grant a grandchild, so c's owned mode survives its own release.
        let _ = c.on_message(
            NodeId(2),
            Message::Request(QueuedRequest::plain(NodeId(2), Mode::IntentRead)),
        );
        let eff = c.on_release().unwrap();
        assert_eq!(
            sends(&eff),
            1,
            "eager variant notifies even though owned mode is unchanged"
        );
    }

    #[test]
    fn suppressed_release_when_owned_unchanged() {
        let mut c = HierNode::new(NodeId(1), NodeId(0), paper());
        let _ = c.on_acquire(Mode::IntentRead).unwrap();
        let _ = c.on_message(
            NodeId(0),
            Message::Grant {
                mode: Mode::IntentRead,
            },
        );
        let _ = c.on_message(
            NodeId(2),
            Message::Request(QueuedRequest::plain(NodeId(2), Mode::IntentRead)),
        );
        let eff = c.on_release().unwrap();
        assert_eq!(sends(&eff), 0, "Rule 5.2: owned still IR via the child");
    }
}

mod rule6_freezing {
    use super::*;

    #[test]
    fn token_freezes_on_incompatible_queue_and_notifies_capable_children() {
        let mut t = HierNode::with_token(NodeId(0), paper());
        t.on_acquire(Mode::Read).unwrap();
        // Child holding IR (can grant IR → must be told about an IR freeze).
        let _ = t.on_message(
            NodeId(1),
            Message::Request(QueuedRequest::plain(NodeId(1), Mode::IntentRead)),
        );
        let eff = t.on_message(
            NodeId(2),
            Message::Request(QueuedRequest::plain(NodeId(2), Mode::Write)),
        );
        assert!(t.frozen().contains(Mode::IntentRead));
        assert!(t.frozen().contains(Mode::Read));
        assert!(t.frozen().contains(Mode::Upgrade));
        let freeze_sends = eff
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Effect::Send {
                        message: Message::SetFrozen { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(freeze_sends, 1, "exactly the IR-holding child is notified");
    }

    #[test]
    fn frozen_node_refuses_grants_it_could_otherwise_make() {
        let mut n = HierNode::new(NodeId(1), NodeId(0), paper());
        let _ = n.on_acquire(Mode::IntentRead).unwrap();
        let _ = n.on_message(
            NodeId(0),
            Message::Grant {
                mode: Mode::IntentRead,
            },
        );
        // Freeze IR at this node.
        let _ = n.on_message(
            NodeId(0),
            Message::SetFrozen {
                modes: dlm_core::ModeSet::from_modes([Mode::IntentRead]),
            },
        );
        let eff = n.on_message(
            NodeId(2),
            Message::Request(QueuedRequest::plain(NodeId(2), Mode::IntentRead)),
        );
        assert!(
            matches!(
                eff.as_slice(),
                [Effect::Send {
                    message: Message::Request(_),
                    ..
                }]
            ),
            "frozen IR is forwarded, not granted"
        );
    }

    #[test]
    fn unfreeze_restores_granting() {
        let mut n = HierNode::new(NodeId(1), NodeId(0), paper());
        let _ = n.on_acquire(Mode::IntentRead).unwrap();
        let _ = n.on_message(
            NodeId(0),
            Message::Grant {
                mode: Mode::IntentRead,
            },
        );
        let _ = n.on_message(
            NodeId(0),
            Message::SetFrozen {
                modes: dlm_core::ModeSet::from_modes([Mode::IntentRead]),
            },
        );
        let _ = n.on_message(
            NodeId(0),
            Message::SetFrozen {
                modes: dlm_core::ModeSet::EMPTY,
            },
        );
        let eff = n.on_message(
            NodeId(2),
            Message::Request(QueuedRequest::plain(NodeId(2), Mode::IntentRead)),
        );
        assert!(matches!(
            eff.as_slice(),
            [Effect::Send {
                message: Message::Grant { .. },
                ..
            }]
        ));
    }
}

mod rule7_upgrade {
    use super::*;

    #[test]
    fn immediate_upgrade_when_alone() {
        let mut t = HierNode::with_token(NodeId(0), paper());
        t.on_acquire(Mode::Upgrade).unwrap();
        let eff = t.on_upgrade().unwrap();
        assert!(eff.iter().any(|e| matches!(e, Effect::Upgraded)));
        assert_eq!(t.held(), Mode::Write);
    }

    #[test]
    fn upgrade_errors() {
        let mut t = HierNode::with_token(NodeId(0), paper());
        assert_eq!(
            t.on_upgrade(),
            Err(UpgradeError::NotHoldingUpgradeLock(Mode::NoLock))
        );
        t.on_acquire(Mode::Read).unwrap();
        assert_eq!(
            t.on_upgrade(),
            Err(UpgradeError::NotHoldingUpgradeLock(Mode::Read))
        );
    }

    #[test]
    fn release_during_pending_upgrade_is_rejected() {
        let mut t = HierNode::with_token(NodeId(0), paper());
        t.on_acquire(Mode::Upgrade).unwrap();
        // A reader child keeps the upgrade pending.
        let _ = t.on_message(
            NodeId(1),
            Message::Request(QueuedRequest::plain(NodeId(1), Mode::IntentRead)),
        );
        let _ = t.on_upgrade().unwrap();
        assert!(t.pending_is_upgrade());
        assert_eq!(t.on_release(), Err(ReleaseError::UpgradePending));
        assert_eq!(t.held(), Mode::Upgrade, "U never released mid-upgrade");
    }
}

mod api_misuse {
    use super::*;

    #[test]
    fn acquire_errors() {
        let mut t = HierNode::with_token(NodeId(0), paper());
        assert_eq!(
            t.on_acquire(Mode::NoLock),
            Err(AcquireError::NoLockRequested)
        );
        t.on_acquire(Mode::Read).unwrap();
        assert_eq!(
            t.on_acquire(Mode::Read),
            Err(AcquireError::AlreadyHeld(Mode::Read))
        );
        let mut n = HierNode::new(NodeId(1), NodeId(0), paper());
        n.on_acquire(Mode::Write).unwrap();
        assert_eq!(
            n.on_acquire(Mode::Read),
            Err(AcquireError::AlreadyPending(Mode::Write))
        );
    }

    #[test]
    fn release_without_holding() {
        let mut t = HierNode::with_token(NodeId(0), paper());
        assert_eq!(t.on_release(), Err(ReleaseError::NotHeld));
    }

    #[test]
    fn can_admit_locally_matches_fast_path() {
        let mut t = HierNode::with_token(NodeId(0), paper());
        assert!(t.can_admit_locally(Mode::Write));
        assert!(!t.can_admit_locally(Mode::NoLock));
        t.on_acquire(Mode::Read).unwrap();
        assert!(!t.can_admit_locally(Mode::Read), "already holding");
        let n = HierNode::new(NodeId(1), NodeId(0), paper());
        assert!(!n.can_admit_locally(Mode::IntentRead), "owns nothing");
    }
}
