//! Property-based tests: random workloads under random (per-channel-FIFO)
//! message interleavings must preserve every safety invariant at every step
//! and reach clean quiescence — i.e. mutual exclusion, single token, no
//! starvation, coherent trees and copysets, zero anomalies.

use dlm_core::testkit::LockStepNet;
use dlm_core::{Mode, ProtocolConfig};
use proptest::prelude::*;

/// The paper's request-mode mix (§4): IR 80 %, R 10 %, U 4 %, IW 5 %, W 1 %.
fn paper_mode(w: u8) -> Mode {
    match w % 100 {
        0..=79 => Mode::IntentRead,
        80..=89 => Mode::Read,
        90..=93 => Mode::Upgrade,
        94..=98 => Mode::IntentWrite,
        _ => Mode::Write,
    }
}

/// One externally-chosen step of the random schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Deliver one in-flight message from the `k % channels`-th channel.
    Deliver(u8),
    /// Node `n % len` tries to acquire a mode drawn from the paper mix.
    Acquire(u8, u8),
    /// Node `n % len` releases if it holds (and has no pending upgrade).
    Release(u8),
    /// Node `n % len` upgrades if it holds `U`.
    Upgrade(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => any::<u8>().prop_map(Step::Deliver),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(n, m)| Step::Acquire(n, m)),
        3 => any::<u8>().prop_map(Step::Release),
        1 => any::<u8>().prop_map(Step::Upgrade),
    ]
}

/// Run a schedule against a net, then drain it to quiescence: deliver all
/// traffic and release every holder until nothing is pending. Panics (via
/// audit) on any safety violation; returns the number of grants observed.
fn run_schedule(mut net: LockStepNet, steps: &[Step]) -> LockStepNet {
    let n = net.len() as u8;
    for step in steps {
        match *step {
            Step::Deliver(k) => {
                let _ = net.deliver_one_with(|channels| k as usize % channels);
            }
            Step::Acquire(who, m) => {
                let id = (who % n) as u32;
                let node = net.node(id);
                if node.held() == Mode::NoLock && node.pending().is_none() {
                    net.acquire(id, paper_mode(m));
                }
            }
            Step::Release(who) => {
                let id = (who % n) as u32;
                let node = net.node(id);
                if node.held() != Mode::NoLock && !node.pending_is_upgrade() {
                    net.release(id);
                }
            }
            Step::Upgrade(who) => {
                let id = (who % n) as u32;
                let node = net.node(id);
                if node.held() == Mode::Upgrade && node.pending().is_none() {
                    net.upgrade(id);
                }
            }
        }
    }
    // Drain to quiescence: alternate full delivery with releasing holders.
    // Every pending request must eventually be granted (no starvation).
    for _round in 0..10_000 {
        net.deliver_all();
        let holders: Vec<u32> = (0..net.len() as u32)
            .filter(|&i| net.node(i).held() != Mode::NoLock && !net.node(i).pending_is_upgrade())
            .collect();
        let anyone_pending = (0..net.len() as u32).any(|i| net.node(i).pending().is_some());
        if holders.is_empty() && !anyone_pending {
            break;
        }
        for id in holders {
            net.release(id);
        }
        if !anyone_pending && net.in_flight().is_empty() {
            break;
        }
    }
    net.deliver_all();
    let errors = net.audit_now(true);
    assert!(errors.is_empty(), "quiescent audit failed: {errors:?}");
    net
}

fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(192)))]

    /// Safety + liveness under the full paper protocol, random schedules,
    /// random star sizes.
    #[test]
    fn random_schedules_stay_safe_and_live(
        n in 2usize..9,
        steps in proptest::collection::vec(step_strategy(), 1..120),
    ) {
        let net = LockStepNet::star(n);
        let net = run_schedule(net, &steps);
        // Every acquire that was issued got granted (or upgraded): no node is
        // left waiting, and defensive paths never fired.
        for i in 0..net.len() as u32 {
            prop_assert_eq!(net.node(i).pending(), None);
            prop_assert_eq!(net.node(i).anomalies(), 0);
            prop_assert_eq!(net.node(i).queue_len(), 0);
        }
    }

    /// The same property on arbitrary initial trees (chains, bushy trees),
    /// not just stars.
    #[test]
    fn random_trees_stay_safe_and_live(
        shape in proptest::collection::vec(any::<u8>(), 1..8),
        steps in proptest::collection::vec(step_strategy(), 1..100),
    ) {
        // parents[i] for node i+1 is a uniformly chosen earlier node, which
        // generates every tree shape on n nodes; node 0 is the root.
        let mut parents: Vec<Option<u32>> = vec![None];
        for (i, &r) in shape.iter().enumerate() {
            parents.push(Some(r as u32 % (i as u32 + 1)));
        }
        let net = LockStepNet::with_parents(&parents, ProtocolConfig::paper());
        let _ = run_schedule(net, &steps);
    }

    /// Safety (not fairness) must hold under every ablation: disabling
    /// queueing, child grants, release suppression or freezing may cost
    /// messages or FIFO order but never correctness.
    #[test]
    fn ablations_preserve_safety(
        which in 0usize..4,
        n in 2usize..7,
        steps in proptest::collection::vec(step_strategy(), 1..100),
    ) {
        let config = ProtocolConfig::paper().without(dlm_core::ALL_ABLATIONS[which]);
        let net = LockStepNet::star_with_config(n, config);
        let _ = run_schedule(net, &steps);
    }

    /// The 1:1 send contract of the trace pipeline: on arbitrary schedules,
    /// every `Effect::Send` the state machines produce is matched by exactly
    /// one send-class trace event — so trace-derived message accounting is
    /// exact, never approximate.
    #[test]
    fn trace_send_events_match_message_count(
        n in 2usize..9,
        steps in proptest::collection::vec(step_strategy(), 1..120),
    ) {
        use dlm_trace::{Recorder, TraceStats};
        use std::cell::RefCell;
        use std::rc::Rc;
        let stats = Rc::new(RefCell::new(TraceStats::new()));
        let mut net = LockStepNet::star(n);
        net.record_into(0, Rc::clone(&stats) as Rc<RefCell<dyn Recorder>>);
        let net = run_schedule(net, &steps);
        prop_assert_eq!(stats.borrow().total_sends(), net.messages_sent);
    }

    /// Message-free fast path: a node that owns a sufficient compatible mode
    /// re-enters with zero messages, regardless of history.
    #[test]
    fn rule2_local_admit_is_message_free(
        n in 2usize..6,
        steps in proptest::collection::vec(step_strategy(), 1..60),
        who in any::<u8>(),
    ) {
        let net = LockStepNet::star(n);
        let mut net = run_schedule(net, &steps);
        let id = (who as usize % n) as u32;
        // After quiescence grab whatever mode the node can self-admit.
        let owned = net.node(id).owned();
        if owned != Mode::NoLock {
            let before = net.messages_sent;
            // Acquire the owned mode itself: by Rule 2 this must be free
            // (owned >= owned, compatible unless owned is U/W-self-conflicting).
            if dlm_modes::compatible(owned, owned) {
                net.acquire(id, owned);
                prop_assert_eq!(net.messages_sent, before);
                net.release(id);
                net.deliver_all();
            }
        }
    }
}

/// Deterministic regression: two writers and a reader hammering a 3-node
/// net in a fixed tricky order (request overtakes token transfer).
#[test]
fn interleaved_writers_regression() {
    let mut net = LockStepNet::star(3);
    net.acquire(1, Mode::Write);
    net.acquire(2, Mode::Write);
    net.acquire(0, Mode::Read); // token node queues its own R behind nothing yet
    net.deliver_all();
    // Whoever won, release in discovered order until everyone got served.
    for _ in 0..10 {
        for i in 0..3 {
            if net.node(i).held() != Mode::NoLock {
                net.release(i);
            }
        }
        net.deliver_all();
        if (0..3).all(|i| net.node(i).pending().is_none()) {
            break;
        }
    }
    let errors = net.audit_now(true);
    assert!(errors.is_empty(), "{errors:?}");
    assert!(net.was_granted(1, Mode::Write));
    assert!(net.was_granted(2, Mode::Write));
    assert!(net.was_granted(0, Mode::Read));
}
