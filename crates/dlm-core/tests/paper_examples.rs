//! Replays of the paper's worked examples (Figures 2–6), asserting the
//! intermediate and final `(MO, MH, MP)` states, copysets, queue contents and
//! token position the paper depicts. These tests pin the operational
//! semantics of the protocol to the published behaviour.
//!
//! Node naming follows the figures: A=0, B=1, C=2, D=3, E=4.

use dlm_core::testkit::LockStepNet;
use dlm_core::{Mode, NodeId};

const A: u32 = 0;
const B: u32 = 1;
const C: u32 = 2;
const D: u32 = 3;
const E: u32 = 4;

fn assert_state(net: &LockStepNet, id: u32, owned: Mode, held: Mode, pending: Option<Mode>) {
    let n = net.node(id);
    assert_eq!(n.owned(), owned, "node {id} owned");
    assert_eq!(n.held(), held, "node {id} held");
    assert_eq!(n.pending(), pending, "node {id} pending");
}

/// Figure 2: request granting.
///
/// (a) A is the token node holding IR; E requests IR → A answers with a
///     copy-grant, E becomes a child of A.
/// (b) B requests R; R is stronger than A's owned IR, so the token moves to
///     B and A becomes B's child.
/// (c) Final: B(R,R,0) with token, A(IR,IR,0), E(IR,IR,0).
#[test]
fn figure_2_request_granting() {
    // A root; B..E children of A.
    let mut net = LockStepNet::star(5);
    net.acquire(A, Mode::IntentRead);
    assert_state(&net, A, Mode::IntentRead, Mode::IntentRead, None);
    assert_eq!(net.messages_sent, 0, "token self-grant is message-free");

    // (a) E requests IR.
    net.acquire(E, Mode::IntentRead);
    assert_state(&net, E, Mode::NoLock, Mode::NoLock, Some(Mode::IntentRead));
    net.deliver_all();
    assert_state(&net, E, Mode::IntentRead, Mode::IntentRead, None);
    assert_eq!(
        net.node(A).copyset().get(&NodeId(E)),
        Some(&Mode::IntentRead),
        "E joins A's copyset"
    );
    assert!(
        net.node(A).has_token(),
        "copy grant does not move the token"
    );

    // (b) B requests R: MO(A)=IR < R, so the token transfers.
    net.acquire(B, Mode::Read);
    net.deliver_all();

    // (c) Final state.
    assert!(net.node(B).has_token(), "B is the new token node");
    assert!(!net.node(A).has_token());
    assert_state(&net, B, Mode::Read, Mode::Read, None);
    assert_state(&net, A, Mode::IntentRead, Mode::IntentRead, None);
    assert_state(&net, E, Mode::IntentRead, Mode::IntentRead, None);
    assert_eq!(
        net.node(A).parent(),
        Some(NodeId(B)),
        "A re-parents under B"
    );
    assert_eq!(
        net.node(B).copyset().get(&NodeId(A)),
        Some(&Mode::IntentRead),
        "B records A's subtree at its owned mode IR"
    );
    // E stays A's child (grants do not disturb unrelated structure).
    assert_eq!(net.node(E).parent(), Some(NodeId(A)));
}

/// Figure 3: queue vs. forward.
///
/// Tree: A(token) — B — {C, D}. A holds IW.
/// (a) C requests IR from its parent B; B owns nothing and has no pending
///     request (MP = NL), so Table 1(c) forces a forward to A.
/// (b) A (token, IW compatible with IR) copy-grants C.
/// (c) B requests R (queued at A: R is incompatible with IW) while D
///     requests R at B; B now has a pending R, so Table 1(c) queues D's R
///     locally at B.
/// (d) When A releases IW, B gets the token (R > A's remaining owned mode),
///     and B serves D's queued request itself.
#[test]
fn figure_3_queue_and_forward() {
    let mut net = LockStepNet::with_parents(
        &[None, Some(A), Some(B), Some(B)],
        dlm_core::ProtocolConfig::paper(),
    );
    net.acquire(A, Mode::IntentWrite);
    assert_state(&net, A, Mode::IntentWrite, Mode::IntentWrite, None);

    // (a)+(b): C's IR is forwarded by B and granted by A.
    net.acquire(C, Mode::IntentRead);
    let msgs_before = net.messages_sent;
    net.deliver_all();
    // request C->B, forward B->A, grant A->C: exactly 3 messages.
    assert_eq!(net.messages_sent - msgs_before + 1, 3);
    assert_state(&net, C, Mode::IntentRead, Mode::IntentRead, None);
    assert_eq!(
        net.node(C).parent(),
        Some(NodeId(A)),
        "C re-parents to granter A"
    );
    assert_eq!(
        net.node(B).queue_len(),
        0,
        "B forwarded, not queued (MP=NL)"
    );

    // (c): B requests R; D requests R.
    net.acquire(B, Mode::Read);
    net.deliver_all(); // B's request reaches A and is queued there
    assert_state(&net, B, Mode::NoLock, Mode::NoLock, Some(Mode::Read));
    assert_eq!(
        net.node(A).queue_len(),
        1,
        "A queues B's R (incompatible with IW) per Rule 4.2"
    );
    net.acquire(D, Mode::Read);
    net.deliver_all();
    assert_eq!(
        net.node(B).queue_len(),
        1,
        "B queues D's R locally per Table 1(c): pending R, request R"
    );
    assert_state(&net, D, Mode::NoLock, Mode::NoLock, Some(Mode::Read));

    // (d): A releases IW; queued requests are served.
    net.release(A);
    net.settle();
    assert!(net.node(B).has_token(), "token moved to B (R > A's owned)");
    assert_state(&net, B, Mode::Read, Mode::Read, None);
    assert_state(&net, D, Mode::Read, Mode::Read, None);
    assert!(net.was_granted(D, Mode::Read));
    // B served D from its own queue: D is in B's copyset.
    assert_eq!(net.node(B).copyset().get(&NodeId(D)), Some(&Mode::Read));
}

/// Figure 4: release propagation (Rule 5).
///
/// A(R,R) token with C's IW queued; B(R,R) child of A; D(R,R) child of B.
/// (a) B releases R → B still owns R through D → **no** release message.
/// (b) D releases R → D notifies B; B's owned drops to NL → B notifies A.
/// (c) A releases R; with every R gone, the queued IW is served by token
///     transfer to C.
#[test]
fn figure_4_release_propagation() {
    // The figure ends with an *idle* token transferring to the queued IW
    // requester — the literal Rule 3.2 policy (see
    // `ProtocolConfig::eager_idle_transfer`).
    let mut net = LockStepNet::with_parents(
        &[None, Some(A), Some(A), Some(B)],
        dlm_core::ProtocolConfig::paper().literal_rule_3_2(),
    );
    // Build the initial configuration through the protocol itself.
    net.acquire(A, Mode::Read);
    net.acquire(B, Mode::Read); // copy grant from A
    net.deliver_all();
    net.acquire(D, Mode::Read); // D's parent B owns R -> grants directly
    net.deliver_all();
    assert_eq!(
        net.node(B).copyset().get(&NodeId(D)),
        Some(&Mode::Read),
        "B granted D itself (Rule 3.1)"
    );
    net.acquire(C, Mode::IntentWrite); // queued at A
    net.deliver_all();
    assert_eq!(net.node(A).queue_len(), 1);
    assert_state(&net, C, Mode::NoLock, Mode::NoLock, Some(Mode::IntentWrite));

    // (a) B releases: owned mode unchanged (D still holds R) → silent.
    let inflight_before = net.in_flight().len();
    net.release(B);
    assert_eq!(
        net.in_flight().len(),
        inflight_before,
        "Rule 5.2: no release message while owned mode is unchanged"
    );
    assert_state(&net, B, Mode::Read, Mode::NoLock, None);

    // (b) D releases: owned weakens at D, then at B; messages climb.
    net.release(D);
    net.deliver_all();
    assert_state(&net, B, Mode::NoLock, Mode::NoLock, None);
    assert!(
        !net.node(A).copyset().contains_key(&NodeId(B)),
        "A drops B from its copyset after the release wave"
    );

    // (c) A releases R: the queued IW is finally served via token transfer.
    net.release(A);
    net.settle();
    assert!(net.node(C).has_token());
    assert_state(&net, C, Mode::IntentWrite, Mode::IntentWrite, None);
    assert_eq!(
        net.node(A).parent(),
        Some(NodeId(C)),
        "A re-parents under C"
    );
}

/// Figure 5: frozen modes (Rule 6).
///
/// A(R,R) token; B owns IR through its child C. D requests W, which A must
/// queue; A freezes {IR, R, U} (Table 1(d), owned=R, request=W) and the
/// freeze propagates through B to C. A *new* IR request (from E) must now
/// wait behind the W instead of being granted, preserving FIFO.
#[test]
fn figure_5_freezing_preserves_fifo() {
    let mut net = LockStepNet::with_parents(
        &[None, Some(A), Some(B), Some(A), Some(A)],
        dlm_core::ProtocolConfig::paper(),
    );
    // History: A takes R first (keeping the token anchored at A), then B
    // acquires IR (copy grant), grants C IR itself, and releases.
    net.acquire(A, Mode::Read);
    assert_state(&net, A, Mode::Read, Mode::Read, None);
    net.acquire(B, Mode::IntentRead);
    net.deliver_all();
    assert!(net.node(A).has_token(), "IR <= R: copy grant, token stays");
    net.acquire(C, Mode::IntentRead);
    net.deliver_all();
    assert_eq!(
        net.node(B).copyset().get(&NodeId(C)),
        Some(&Mode::IntentRead),
        "B can grant C itself: owned IR >= IR"
    );
    net.release(B);
    assert_state(&net, B, Mode::IntentRead, Mode::NoLock, None);

    // D requests W: queued at A; freeze wave goes out.
    net.acquire(D, Mode::Write);
    net.deliver_all();
    assert_eq!(net.node(A).queue_len(), 1);
    let frozen_at_a = net.node(A).frozen();
    assert!(frozen_at_a.contains(Mode::IntentRead));
    assert!(frozen_at_a.contains(Mode::Read));
    assert!(frozen_at_a.contains(Mode::Upgrade));
    assert!(!frozen_at_a.contains(Mode::Write));
    assert!(
        net.node(B).frozen().contains(Mode::IntentRead),
        "freeze propagated to B (owns IR, could grant IR)"
    );
    assert!(
        net.node(C).frozen().contains(Mode::IntentRead),
        "freeze propagated transitively to C"
    );

    // E's fresh IR request must NOT be granted (would starve D's W).
    net.acquire(E, Mode::IntentRead);
    net.deliver_all();
    assert_state(&net, E, Mode::NoLock, Mode::NoLock, Some(Mode::IntentRead));
    assert!(!net.was_granted(E, Mode::IntentRead));

    // Releases: C, then A. The W is served first; E's IR keeps waiting
    // (it is incompatible with the now-held W) until D releases.
    net.release(C);
    net.deliver_all();
    net.release(A);
    net.deliver_all();
    assert!(net.node(D).has_token());
    assert_state(&net, D, Mode::Write, Mode::Write, None);
    assert_state(&net, E, Mode::NoLock, Mode::NoLock, Some(Mode::IntentRead));
    net.release(D);
    net.settle();

    // FIFO: the W grant precedes E's IR grant in the global grant order.
    let pos_w = net
        .granted
        .iter()
        .position(|&(n, m)| n == NodeId(D) && m == Mode::Write)
        .expect("W granted");
    let pos_ir = net
        .granted
        .iter()
        .position(|&(n, m)| n == NodeId(E) && m == Mode::IntentRead)
        .expect("E granted after D releases? no—after D holds");
    assert!(pos_w < pos_ir, "frozen IR must not overtake the queued W");
    assert_state(&net, E, Mode::IntentRead, Mode::IntentRead, None);
}

/// Figure 6: atomic upgrade (Rule 7).
///
/// A (token) holds U while B's subtree owns IR through C. A requests the
/// upgrade; it pends (the IR is incompatible with W... rather, W must wait
/// for the IR), freeze messages go out, and when C's release drains the
/// subtree, A's mode flips U→W without ever releasing U.
#[test]
fn figure_6_atomic_upgrade() {
    let mut net = LockStepNet::with_parents(
        &[None, Some(A), Some(B), Some(A)],
        dlm_core::ProtocolConfig::paper(),
    );
    // History: A takes U first (anchoring the token), then B obtains IR
    // (compatible with U, copy grant), grants C IR, and releases.
    net.acquire(A, Mode::Upgrade);
    assert_state(&net, A, Mode::Upgrade, Mode::Upgrade, None);
    net.acquire(B, Mode::IntentRead);
    net.deliver_all();
    assert!(net.node(A).has_token(), "IR <= U: copy grant, token stays");
    net.acquire(C, Mode::IntentRead);
    net.deliver_all();
    net.release(B);

    // A requests the upgrade: pends with (U,U,W) as in Fig. 6(a).
    net.upgrade(A);
    net.deliver_all();
    assert_state(&net, A, Mode::Upgrade, Mode::Upgrade, Some(Mode::Write));
    assert!(net.node(A).pending_is_upgrade());
    assert!(
        net.node(B).frozen().contains(Mode::IntentRead),
        "children are told to freeze IR while the upgrade waits"
    );

    // A keeps holding U throughout: no moment exists where A holds nothing.
    assert_eq!(net.node(A).held(), Mode::Upgrade);

    // C releases IR; the wave reaches A; the upgrade completes atomically.
    net.release(C);
    net.settle();
    assert_state(&net, A, Mode::Write, Mode::Write, None);
    assert_eq!(net.upgraded, vec![NodeId(A)]);
    assert!(
        !net.was_granted(A, Mode::Write),
        "upgrade completion is reported as Upgraded, not a fresh grant"
    );
}

/// The protocol's headline free lunch: while a node *owns* a sufficient
/// compatible mode (e.g. through its subtree), re-acquisitions are message
/// free (Rule 2). Exercised here through a child that keeps the subtree's
/// owned mode alive across the parent's own acquire/release cycles.
#[test]
fn intent_reacquisition_is_message_free() {
    // Chain A <- B <- C so that C's request routes through B.
    let mut net =
        LockStepNet::with_parents(&[None, Some(A), Some(B)], dlm_core::ProtocolConfig::paper());
    // B acquires IR and then grants C (so B's subtree owns IR even while B
    // itself holds nothing).
    net.acquire(B, Mode::IntentRead);
    net.deliver_all();
    net.acquire(C, Mode::IntentRead);
    net.deliver_all();
    assert_eq!(
        net.node(B).copyset().get(&dlm_core::NodeId(C)),
        Some(&Mode::IntentRead),
        "B grants C itself (C's request is forwarded to B's... granter)"
    );
    let after_setup = net.messages_sent;
    for _ in 0..10 {
        net.release(B);
        net.acquire(B, Mode::IntentRead);
        net.deliver_all();
    }
    assert_eq!(
        net.messages_sent, after_setup,
        "re-acquiring an owned compatible mode costs zero messages"
    );
}
