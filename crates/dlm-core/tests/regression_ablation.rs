//! Regression for a safety violation found by proptest under the
//! local-queueing ablation (kept minimized).

use dlm_core::testkit::LockStepNet;
use dlm_core::{Mode, ProtocolConfig};

fn dump(net: &LockStepNet, label: &str) {
    eprintln!("--- {label} ---");
    for i in 0..net.len() as u32 {
        let n = net.node(i);
        eprintln!(
            "  n{i}: token={} parent={:?} owned={} held={} pending={:?} queue={:?} frozen={} copyset={:?}",
            n.has_token(),
            n.parent(),
            n.owned(),
            n.held(),
            n.pending(),
            n.queued().collect::<Vec<_>>(),
            n.frozen(),
            n.copyset()
        );
    }
    for f in net.in_flight() {
        eprintln!("  flight {} -> {}: {:?}", f.from, f.to, f.message);
    }
}

#[test]
fn local_queueing_ablation_upgrade_race() {
    let cfg = ProtocolConfig::paper().without(dlm_core::Ablation::LocalQueueing);
    let mut net = LockStepNet::star_with_config(3, cfg);
    net.acquire(0, Mode::IntentRead); // token self-grant
    net.acquire(1, Mode::IntentRead); // request -> 0
    net.deliver_one(); // request at 0 -> copy grant
    net.deliver_one(); // grant at 1
    net.acquire(2, Mode::Upgrade); // request -> 0
    net.deliver_one(); // at 0: token transfer to 2
    net.release(0); // release IR: owned stays IR via copyset{1:IR}
    net.deliver_one(); // token at 2: holds U
    dump(&net, "after token at 2");
    net.acquire(0, Mode::Read); // 0 requests R via parent 2
    net.deliver_one(); // at 2: copy grant R to 0
    dump(&net, "after copy grant issued");
    net.release(1); // 1 releases IR -> Release(NL) to 0
                    // Deliver 1's release to 0 BEFORE the grant from 2 reaches 0. Node 0's
                    // owned collapses to NoLock and it emits Release(NL) to its parent 2 —
                    // while 2's Grant(R) to node 0 is still in flight. Without the ack
                    // filter, that stale release erased 2's copyset entry for 0's R and the
                    // subsequent upgrade produced W concurrent with 0's R.
    assert!(net.deliver_one_with(|channels| {
        assert_eq!(channels, 2, "grant 2->0 and release 1->0 in flight");
        1 // the (1 -> 0) release channel
    }));
    dump(&net, "after stale release generated");
    // Deliver the stale release 0 -> 2 next, before 0 sees its grant.
    assert!(net.deliver_one_with(|_| 1));
    assert_eq!(
        net.node(2).copyset().get(&dlm_core::NodeId(0)),
        Some(&Mode::Read),
        "stale release must not erase the in-flight grant from the copyset"
    );
    net.upgrade(2);
    net.deliver_all();
    dump(&net, "final");
    // The upgrade must wait until node 0 actually releases its R.
    assert_eq!(net.node(2).held(), Mode::Upgrade);
    assert_eq!(net.node(0).held(), Mode::Read);
    net.release(0);
    net.deliver_all();
    assert_eq!(
        net.node(2).held(),
        Mode::Write,
        "upgrade completes after release"
    );
    let errors = net.audit_now(false);
    assert!(errors.is_empty(), "{errors:?}");
}
