//! Protocol feature toggles.

use serde::{Deserialize, Serialize};

/// Feature toggles for the hierarchical protocol.
///
/// The full protocol enables everything. The switches exist for the ablation
/// experiments in `dlm-harness`: the paper credits its message savings to
/// local queueing, child granting and release suppression (§4.1), and its
/// fairness to freezing (§3.3); each can be disabled to quantify its
/// contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Rule 4.1 / Table 1(c): allow non-token nodes to queue requests locally.
    /// When off, a non-token node that cannot grant always forwards.
    pub local_queueing: bool,
    /// Rule 3.1 / Table 1(b): allow non-token nodes to copy-grant requests.
    /// When off, only the token node grants.
    pub child_grants: bool,
    /// Rule 5.2: send a release to the parent only when the owned mode
    /// weakens. When off, every release/receipt is propagated upward
    /// (the "more eager variant" the paper compares against in §3.2).
    pub release_suppression: bool,
    /// Rule 6 / Table 1(d): freeze modes that could starve queued requests.
    /// When off, compatible latecomers may overtake queued requests
    /// indefinitely (the starvation scenario of §3.3).
    pub freezing: bool,
    /// Token-transfer policy for an **idle** token (owned mode `NoLock`).
    ///
    /// Rule 3.2's text transfers whenever `MO < MR`, which for an idle token
    /// means *every* grant migrates the token; since this protocol (unlike
    /// Naimi's) cannot path-reverse on forwarding (see `handlers.rs`), those
    /// migrations degrade the parent graph into O(n) history chains and the
    /// measured message overhead grows far beyond the paper's ≈3-message
    /// asymptote. Following the Li/Hudak ownership discipline the paper's
    /// copysets generalize — *reads copy, writes migrate ownership* — the
    /// default (`false`) keeps an idle token in place for shared-mode
    /// requests (IR, R, IW) and migrates it only for exclusive ones (U, W).
    /// Every worked example in the paper involves a non-idle token and is
    /// unaffected. Set `true` for the literal reading of Rule 3.2; the
    /// ablation harness quantifies the difference (DESIGN.md §3).
    pub eager_idle_transfer: bool,
    /// **Seeded bug — test-only.** Accept stale releases instead of dropping
    /// them, reintroducing the grant/release channel race documented at
    /// [`crate::Message::Release::ack`]: a release racing a grant on the
    /// opposite channel erases the granted mode from the granter's copyset
    /// and breaks mutual exclusion. The model checker uses this flag to
    /// prove its counterexample machinery finds a real, replayable violation
    /// (dlm-check's `seeded_bug` tests). Never enable it outside tests.
    pub accept_stale_releases: bool,
}

impl ProtocolConfig {
    /// The protocol exactly as published.
    pub const fn paper() -> Self {
        ProtocolConfig {
            local_queueing: true,
            child_grants: true,
            release_suppression: true,
            freezing: true,
            eager_idle_transfer: false,
            accept_stale_releases: false,
        }
    }

    /// The literal reading of Rule 3.2: an idle token migrates on every
    /// grant. See [`ProtocolConfig::eager_idle_transfer`].
    pub const fn literal_rule_3_2(mut self) -> Self {
        self.eager_idle_transfer = true;
        self
    }

    /// Enable the test-only seeded stale-release bug. See
    /// [`ProtocolConfig::accept_stale_releases`].
    pub const fn with_seeded_stale_release_bug(mut self) -> Self {
        self.accept_stale_releases = true;
        self
    }

    /// Disable one feature relative to the paper configuration; used by the
    /// ablation harness.
    pub fn without(mut self, feature: Ablation) -> Self {
        match feature {
            Ablation::LocalQueueing => self.local_queueing = false,
            Ablation::ChildGrants => self.child_grants = false,
            Ablation::ReleaseSuppression => self.release_suppression = false,
            Ablation::Freezing => self.freezing = false,
        }
        self
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A protocol feature that can be ablated. See [`ProtocolConfig::without`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ablation {
    /// Disable Rule 4.1 local queueing.
    LocalQueueing,
    /// Disable Rule 3.1 child grants.
    ChildGrants,
    /// Disable Rule 5.2 release suppression.
    ReleaseSuppression,
    /// Disable Rule 6 freezing.
    Freezing,
}

/// All ablatable features, for sweep loops.
pub const ALL_ABLATIONS: [Ablation; 4] = [
    Ablation::LocalQueueing,
    Ablation::ChildGrants,
    Ablation::ReleaseSuppression,
    Ablation::Freezing,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_enables_everything() {
        let c = ProtocolConfig::paper();
        assert!(c.local_queueing && c.child_grants && c.release_suppression && c.freezing);
        assert_eq!(ProtocolConfig::default(), c);
    }

    #[test]
    fn without_disables_exactly_one_feature() {
        for &a in &ALL_ABLATIONS {
            let c = ProtocolConfig::paper().without(a);
            let disabled = [
                !c.local_queueing,
                !c.child_grants,
                !c.release_suppression,
                !c.freezing,
            ]
            .iter()
            .filter(|&&d| d)
            .count();
            assert_eq!(disabled, 1, "{a:?} must disable exactly one feature");
        }
    }
}
