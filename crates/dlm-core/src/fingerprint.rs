//! Structural fingerprinting for model checking.
//!
//! The bounded model checker in `dlm-check` memoizes visited system states.
//! Its seed implementation keyed on `format!("{:?}", …)` output — correct but
//! slow (hundreds of bytes of formatting per state) and fragile only in the
//! sense that it leaned on `Debug` covering every field. This module replaces
//! it with a 128-bit structural hash built by a visitor ([`FpHasher`]) that
//! every protocol type feeds explicitly.
//!
//! Two properties matter:
//!
//! * **Field coverage is compiler-checked.** Each `fingerprint_into`
//!   implementation *exhaustively destructures* its type (no `..` rest
//!   patterns), so adding a field to [`crate::HierNode`] or
//!   [`crate::Message`] without extending its fingerprint is a compile
//!   error, not a silently unsound checker.
//! * **Unambiguous encoding.** Variable-length collections are
//!   length-prefixed and enum variants are tagged, so distinct states cannot
//!   produce the same input stream to the hasher. Collisions are then only
//!   the generic 128-bit birthday risk (~2⁻⁶⁴ per pair — negligible for the
//!   ≤10⁷-state explorations the checker runs).
//!
//! The hash itself is two independently-seeded multiply–rotate lanes with a
//! murmur-style finalizer — deterministic across runs and platforms, with no
//! dependency on `std::hash::Hasher` (whose `DefaultHasher` is explicitly
//! not stable across releases).

use crate::config::ProtocolConfig;
use crate::ids::NodeId;
use crate::message::{Message, QueuedRequest};
use core::fmt;
use dlm_modes::{Mode, ModeSet, ALL_MODES};

/// A 128-bit structural state digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

const SEED_A: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED_B: u64 = 0xc2b2_ae3d_27d4_eb4f;
const MUL_A: u64 = 0xff51_afd7_ed55_8ccd;
const MUL_B: u64 = 0xc4ce_b9fe_1a85_ec53;

/// The hash visitor: protocol types write their fields into it via
/// [`Fingerprintable::fingerprint_into`].
#[derive(Debug, Clone)]
pub struct FpHasher {
    a: u64,
    b: u64,
    len: u64,
}

impl FpHasher {
    /// A fresh hasher (fixed seed: fingerprints are stable across runs).
    pub fn new() -> Self {
        FpHasher {
            a: SEED_A,
            b: SEED_B,
            len: 0,
        }
    }

    /// Mix one 64-bit word into both lanes.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.len = self.len.wrapping_add(1);
        self.a = (self.a ^ v).wrapping_mul(MUL_A).rotate_left(27);
        self.b = (self.b.rotate_left(31) ^ v.wrapping_mul(MUL_B)).wrapping_mul(MUL_A);
    }

    /// Mix a 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    /// Mix a byte.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    /// Mix a length/index (collections must length-prefix their contents).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Mix a boolean.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(v as u64);
    }

    /// Mix any fingerprintable value (visitor-style composition).
    #[inline]
    pub fn write<T: Fingerprintable + ?Sized>(&mut self, v: &T) {
        v.fingerprint_into(self);
    }

    /// Finalize into the 128-bit digest.
    pub fn finish(mut self) -> Fingerprint {
        let n = self.len;
        self.write_u64(n ^ SEED_B);
        // Cross-pollinate the lanes, then murmur-finalize each.
        let (a, b) = (
            self.a ^ self.b.rotate_left(17),
            self.b ^ self.a.rotate_left(43),
        );
        Fingerprint(((fmix64(a) as u128) << 64) | fmix64(b) as u128)
    }
}

impl Default for FpHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// MurmurHash3's 64-bit finalizer (full avalanche).
#[inline]
fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(MUL_A);
    x ^= x >> 33;
    x = x.wrapping_mul(MUL_B);
    x ^= x >> 33;
    x
}

/// Types that contribute their full observable state to a [`FpHasher`].
///
/// Implementations must destructure exhaustively (no `..`) so that new
/// fields cannot be forgotten, and must length-prefix collections / tag enum
/// variants so the byte stream is unambiguous.
pub trait Fingerprintable {
    /// Feed every state-distinguishing field into the hasher.
    fn fingerprint_into(&self, h: &mut FpHasher);

    /// Convenience: hash this value alone.
    fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        self.fingerprint_into(&mut h);
        h.finish()
    }
}

impl Fingerprintable for Mode {
    fn fingerprint_into(&self, h: &mut FpHasher) {
        h.write_u8(self.index() as u8);
    }
}

impl Fingerprintable for ModeSet {
    fn fingerprint_into(&self, h: &mut FpHasher) {
        let mut bits = 0u8;
        for (i, &m) in ALL_MODES.iter().enumerate() {
            if self.contains(m) {
                bits |= 1 << i;
            }
        }
        h.write_u8(bits);
    }
}

impl Fingerprintable for NodeId {
    fn fingerprint_into(&self, h: &mut FpHasher) {
        let NodeId(raw) = *self;
        h.write_u32(raw);
    }
}

impl Fingerprintable for Option<NodeId> {
    fn fingerprint_into(&self, h: &mut FpHasher) {
        match self {
            None => h.write_u8(0),
            Some(id) => {
                h.write_u8(1);
                id.fingerprint_into(h);
            }
        }
    }
}

impl Fingerprintable for ProtocolConfig {
    fn fingerprint_into(&self, h: &mut FpHasher) {
        let ProtocolConfig {
            local_queueing,
            child_grants,
            release_suppression,
            freezing,
            eager_idle_transfer,
            accept_stale_releases,
        } = *self;
        h.write_bool(local_queueing);
        h.write_bool(child_grants);
        h.write_bool(release_suppression);
        h.write_bool(freezing);
        h.write_bool(eager_idle_transfer);
        h.write_bool(accept_stale_releases);
    }
}

impl Fingerprintable for QueuedRequest {
    fn fingerprint_into(&self, h: &mut FpHasher) {
        let QueuedRequest {
            from,
            mode,
            upgrade,
            priority,
        } = *self;
        from.fingerprint_into(h);
        mode.fingerprint_into(h);
        h.write_bool(upgrade);
        h.write_u8(priority);
    }
}

impl Fingerprintable for Message {
    fn fingerprint_into(&self, h: &mut FpHasher) {
        match self {
            Message::Request(req) => {
                h.write_u8(0);
                req.fingerprint_into(h);
            }
            Message::Grant { mode } => {
                h.write_u8(1);
                mode.fingerprint_into(h);
            }
            Message::Token {
                mode,
                granter_owned,
                queue,
                frozen,
            } => {
                h.write_u8(2);
                mode.fingerprint_into(h);
                granter_owned.fingerprint_into(h);
                h.write_usize(queue.len());
                for q in queue {
                    q.fingerprint_into(h);
                }
                frozen.fingerprint_into(h);
            }
            Message::Release { new_owned, ack } => {
                h.write_u8(3);
                new_owned.fingerprint_into(h);
                h.write_u64(*ack);
            }
            Message::SetFrozen { modes } => {
                h.write_u8(4);
                modes.fingerprint_into(h);
            }
            Message::Recover {
                dead,
                new_root,
                epoch,
                survivors,
            } => {
                h.write_u8(5);
                dead.fingerprint_into(h);
                new_root.fingerprint_into(h);
                h.write_u32(*epoch);
                h.write_usize(survivors.len());
                for s in survivors {
                    s.fingerprint_into(h);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::HierNode;

    #[test]
    fn hashing_is_deterministic() {
        let m = Message::Grant { mode: Mode::Read };
        assert_eq!(m.fingerprint(), m.fingerprint());
        let n = HierNode::with_token(NodeId(0), ProtocolConfig::paper());
        assert_eq!(n.fingerprint(), n.fingerprint());
    }

    #[test]
    fn distinct_messages_hash_distinctly() {
        let msgs = [
            Message::Grant { mode: Mode::Read },
            Message::Grant { mode: Mode::Write },
            Message::Request(QueuedRequest::plain(NodeId(1), Mode::Read)),
            Message::Release {
                new_owned: Mode::NoLock,
                ack: 0,
            },
            Message::Release {
                new_owned: Mode::NoLock,
                ack: 1,
            },
            Message::SetFrozen {
                modes: ModeSet::EMPTY,
            },
        ];
        for (i, a) in msgs.iter().enumerate() {
            for b in &msgs[i + 1..] {
                assert_ne!(a.fingerprint(), b.fingerprint(), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn length_prefixing_disambiguates_adjacent_collections() {
        // Same multiset of words split differently must not collide: two
        // hashers fed (1)(2,3) vs (1,2)(3) as length-prefixed sequences.
        let mut h1 = FpHasher::new();
        h1.write_usize(1);
        h1.write_u64(7);
        h1.write_usize(2);
        h1.write_u64(8);
        h1.write_u64(9);
        let mut h2 = FpHasher::new();
        h2.write_usize(2);
        h2.write_u64(7);
        h2.write_u64(8);
        h2.write_usize(1);
        h2.write_u64(9);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn node_fingerprint_tracks_protocol_state() {
        let idle = HierNode::with_token(NodeId(0), ProtocolConfig::paper());
        let mut active = idle.clone();
        let fp_idle = idle.fingerprint();
        assert_eq!(fp_idle, active.fingerprint(), "clone hashes identically");
        active.on_acquire(Mode::Write).unwrap();
        assert_ne!(fp_idle, active.fingerprint(), "held mode must be visible");
        active.on_release().unwrap();
        assert_eq!(
            fp_idle,
            active.fingerprint(),
            "acquire+release returns the token node to its initial state"
        );
    }

    #[test]
    fn config_fingerprint_sees_every_toggle() {
        let base = ProtocolConfig::paper();
        let variants = [
            base.without(crate::config::Ablation::LocalQueueing),
            base.without(crate::config::Ablation::ChildGrants),
            base.without(crate::config::Ablation::ReleaseSuppression),
            base.without(crate::config::Ablation::Freezing),
            base.literal_rule_3_2(),
            base.with_seeded_stale_release_bug(),
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
    }
}
