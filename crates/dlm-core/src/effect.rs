//! Effects returned by the state machine for the runtime to execute.

use crate::ids::NodeId;
use crate::message::Message;
use dlm_modes::Mode;

/// An instruction from the protocol state machine to its runtime.
///
/// The state machine never performs IO; instead each entry point returns the
/// effects the runtime must carry out. Runtimes count `Send` effects to obtain
/// the paper's messages-per-request metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Transmit `message` to node `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload.
        message: Message,
    },
    /// The local application's pending request has been granted; it may enter
    /// the critical section in `mode`.
    Granted {
        /// The granted mode.
        mode: Mode,
    },
    /// The local application's Rule 7 upgrade completed: its held `U` lock is
    /// now a `W` lock (no intermediate release happened).
    Upgraded,
}

impl Effect {
    /// Convenience constructor for a send effect.
    pub fn send(to: NodeId, message: Message) -> Self {
        Effect::Send { to, message }
    }

    /// True if this effect is a message transmission.
    pub fn is_send(&self) -> bool {
        matches!(self, Effect::Send { .. })
    }
}

/// Inline capacity of an [`EffectBuf`]. A single protocol entry point emits at
/// most a handful of effects (a grant plus a few freeze/release sends), so
/// eight slots cover steady state; larger bursts spill to the heap.
const INLINE_EFFECTS: usize = 8;

/// A caller-owned, reusable effect sink.
///
/// The protocol entry points (`on_acquire_into` & co.) push into one of these
/// instead of returning a fresh `Vec<Effect>`, so a runtime that keeps a
/// single `EffectBuf` alive performs **zero heap allocations** per protocol
/// step in steady state: the first [`INLINE_EFFECTS`] effects live inline,
/// and the spill vector — only touched by pathological bursts — retains its
/// capacity across [`EffectBuf::drain`] calls.
///
/// Generic over the effect type so the Naimi–Trehel baseline can reuse it for
/// its own effect enum (keeping the per-op cost comparison fair).
#[derive(Debug, Clone)]
pub struct EffectBuf<T = Effect> {
    /// Number of occupied slots in `inline` (spill holds the rest).
    inline_len: usize,
    inline: [Option<T>; INLINE_EFFECTS],
    spill: Vec<T>,
}

impl<T> EffectBuf<T> {
    /// Create an empty buffer. Allocation-free.
    pub fn new() -> Self {
        EffectBuf {
            inline_len: 0,
            inline: std::array::from_fn(|_| None),
            spill: Vec::new(),
        }
    }

    /// Append an effect, spilling to the heap past the inline capacity.
    #[inline]
    pub fn push(&mut self, effect: T) {
        if self.inline_len < INLINE_EFFECTS {
            self.inline[self.inline_len] = Some(effect);
            self.inline_len += 1;
        } else {
            self.spill.push(effect);
        }
    }

    /// Number of buffered effects.
    #[inline]
    pub fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// True if no effects are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0 && self.spill.is_empty()
    }

    /// Iterate the buffered effects in push order without consuming them.
    #[must_use = "iterating the buffered effects has no effect on the buffer; dropping the iterator silently discards the protocol's output"]
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.inline[..self.inline_len]
            .iter()
            .map(|slot| slot.as_ref().expect("occupied inline slot"))
            .chain(self.spill.iter())
    }

    /// Remove and yield the buffered effects in push order, leaving the
    /// buffer empty (and its spill capacity intact) for reuse.
    #[must_use = "the drained effects are the protocol's instructions to its runtime; dropping them un-executed loses messages"]
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        let n = self.inline_len;
        self.inline_len = 0;
        self.inline[..n]
            .iter_mut()
            .map(|slot| slot.take().expect("occupied inline slot"))
            .chain(self.spill.drain(..))
    }

    /// Drop all buffered effects, keeping capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.inline[..self.inline_len] {
            *slot = None;
        }
        self.inline_len = 0;
        self.spill.clear();
    }

    /// Drain into a fresh `Vec` (the compatibility shim the `Vec`-returning
    /// wrappers are built on).
    #[must_use = "the drained effects are the protocol's instructions to its runtime; dropping them un-executed loses messages"]
    pub fn take_vec(&mut self) -> Vec<T> {
        self.drain().collect()
    }
}

impl<T> Default for EffectBuf<T> {
    fn default() -> Self {
        EffectBuf::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_helper_and_predicate() {
        let e = Effect::send(NodeId(2), Message::Grant { mode: Mode::Read });
        assert!(e.is_send());
        assert!(!Effect::Granted { mode: Mode::Read }.is_send());
        assert!(!Effect::Upgraded.is_send());
    }

    #[test]
    fn effectbuf_preserves_push_order_across_spill() {
        let mut buf: EffectBuf<u32> = EffectBuf::new();
        for i in 0..20 {
            buf.push(i);
        }
        assert_eq!(buf.len(), 20);
        assert!(!buf.is_empty());
        let seen: Vec<u32> = buf.iter().copied().collect();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        let drained: Vec<u32> = buf.drain().collect();
        assert_eq!(drained, (0..20).collect::<Vec<_>>());
        assert!(buf.is_empty());
    }

    #[test]
    fn effectbuf_reuse_does_not_leak_stale_effects() {
        let mut buf: EffectBuf<u32> = EffectBuf::new();
        for i in 0..12 {
            buf.push(i);
        }
        let _ = buf.drain().count();
        buf.push(99);
        assert_eq!(buf.take_vec(), vec![99]);
        buf.push(1);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.drain().count(), 0);
    }

    #[test]
    fn partially_consumed_drain_drops_remainder() {
        let mut buf: EffectBuf<u32> = EffectBuf::new();
        for i in 0..10 {
            buf.push(i);
        }
        {
            let mut it = buf.drain();
            assert_eq!(it.next(), Some(0));
        }
        // Dropping the iterator mid-way must still leave the buffer reusable;
        // inline slots not visited by the iterator are cleared lazily by the
        // next push cycle, so only emptiness is guaranteed here.
        assert_eq!(buf.inline_len, 0);
        buf.clear();
        buf.push(7);
        assert_eq!(buf.take_vec(), vec![7]);
    }
}
