//! Effects returned by the state machine for the runtime to execute.

use crate::ids::NodeId;
use crate::message::Message;
use dlm_modes::Mode;

/// An instruction from the protocol state machine to its runtime.
///
/// The state machine never performs IO; instead each entry point returns the
/// effects the runtime must carry out. Runtimes count `Send` effects to obtain
/// the paper's messages-per-request metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Transmit `message` to node `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload.
        message: Message,
    },
    /// The local application's pending request has been granted; it may enter
    /// the critical section in `mode`.
    Granted {
        /// The granted mode.
        mode: Mode,
    },
    /// The local application's Rule 7 upgrade completed: its held `U` lock is
    /// now a `W` lock (no intermediate release happened).
    Upgraded,
}

impl Effect {
    /// Convenience constructor for a send effect.
    pub fn send(to: NodeId, message: Message) -> Self {
        Effect::Send { to, message }
    }

    /// True if this effect is a message transmission.
    pub fn is_send(&self) -> bool {
        matches!(self, Effect::Send { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_helper_and_predicate() {
        let e = Effect::send(NodeId(2), Message::Grant { mode: Mode::Read });
        assert!(e.is_send());
        assert!(!Effect::Granted { mode: Mode::Read }.is_send());
        assert!(!Effect::Upgraded.is_send());
    }
}
