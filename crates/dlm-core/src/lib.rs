//! The peer-to-peer multi-mode hierarchical locking protocol of Desai &
//! Mueller, *A Log(n) Multi-Mode Locking Protocol for Distributed Systems*
//! (IPPS 2003), as a **sans-IO state machine**.
//!
//! Each participating node runs one [`HierNode`] per lock object. The state
//! machine has no clock and performs no IO: every entry point
//! ([`HierNode::on_acquire`], [`HierNode::on_upgrade`],
//! [`HierNode::on_release`], [`HierNode::on_message`]) returns a list of
//! [`Effect`]s — messages to send and local grant notifications — which the
//! caller (the discrete-event simulator in `dlm-sim`, or the threaded cluster
//! runtime in `dlm-cluster`) executes. This makes the protocol deterministic,
//! directly unit-testable, and byte-identical across substrates.
//!
//! # Protocol recap
//!
//! * A single **token** per lock represents ultimate authority; the token node
//!   *owns* the strongest mode held anywhere in the tree (Definition 3).
//! * Nodes form a tree via **parent** links. Requests climb the tree until a
//!   node can grant them (Rule 3), queueing or forwarding along the way per
//!   Table 1(c) (Rule 4).
//! * Compatible requests are served **concurrently**: any node whose owned
//!   mode dominates and is compatible with a request may answer it with a
//!   copy-grant, recording the requester in its **copyset** (Rule 3.1).
//! * A request *stronger* than the token's owned mode moves the token itself;
//!   the old token node becomes a child of the new one (Rule 3.2).
//! * Releases propagate **only when a node's owned mode weakens** (Rule 5.2),
//!   so one message per subtree suffices irrespective of fan-out.
//! * **Freezing** (Rule 6, Table 1(d)) stops compatible latecomers from
//!   starving a queued incompatible request, preserving FIFO order.
//! * **Upgrade** locks (`U`) convert to `W` atomically without releasing
//!   (Rule 7), making read-modify-write deadlock free.
//!
//! # Where the paper is silent
//!
//! The paper specifies rules plus worked examples; a complete implementation
//! needs a handful of operational decisions. They are catalogued in
//! `DESIGN.md` §3 and documented at each code site; the paper's Figures 2–6
//! are replayed step-by-step in this crate's tests to pin the semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod effect;
mod error;
mod fingerprint;
mod flatmap;
mod ids;
mod invariants;
mod message;
mod node;
pub mod testkit;

pub use config::{Ablation, ProtocolConfig, ALL_ABLATIONS};
pub use effect::{Effect, EffectBuf};
pub use error::{AcquireError, ReleaseError, UpgradeError};
pub use fingerprint::{Fingerprint, Fingerprintable, FpHasher};
pub use flatmap::{CopySet, FlatMap, MAP_INLINE};
pub use ids::{LockId, NodeId};
pub use invariants::{audit, fifo_overtakes, frozen_residue, AuditError, GrantInfo, InFlight};
pub use message::{Message, MessageKind, QueuedRequest, ALL_MESSAGE_KINDS};
pub use node::HierNode;

pub use dlm_modes::{Mode, ModeSet};

pub use dlm_trace::{NullObserver, Observer, ProtocolEvent};
