//! A deterministic, lock-step in-memory runtime for the protocol.
//!
//! [`LockStepNet`] hosts one [`HierNode`] per participant and a FIFO message
//! bag, delivering one message at a time with a full safety [`audit`] after
//! every step. It is the reference harness for unit, example-replay and
//! property tests — and the simplest possible answer to "how do I drive this
//! sans-IO state machine?" (the discrete-event simulator in `dlm-sim` and the
//! threaded runtime in `dlm-cluster` follow the same pattern with real
//! scheduling).

use crate::config::ProtocolConfig;
use crate::effect::{Effect, EffectBuf};
use crate::error::{AcquireError, ReleaseError, UpgradeError};
use crate::ids::NodeId;
use crate::invariants::{audit, AuditError, InFlight};
use crate::node::HierNode;
use dlm_modes::Mode;
use dlm_trace::{NullObserver, Recorder, Stamp};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Drive one observed operation against a node: bump the step clock, hand
/// the entry point the net's reusable [`EffectBuf`] and an observer, and
/// evaluate `$body` once per observer type. A macro rather than a closure so
/// the no-recorder arm passes a concrete [`NullObserver`] — the generic entry
/// points then monomorphize with every event site compiled out, and the hot
/// path borrows the node and scratch buffer disjointly with zero allocation.
macro_rules! drive_into {
    ($net:expr, $node:expr, |$n:ident, $buf:ident, $obs:ident| $body:expr) => {{
        $net.steps += 1;
        match $net.recorder.clone() {
            Some(mut rec) => {
                let mut stamp = Stamp {
                    at: $net.steps,
                    lock: $net.trace_lock,
                    sink: &mut rec,
                };
                let $n = &mut $net.nodes[$node];
                let $buf = &mut $net.scratch;
                let $obs = &mut stamp;
                $body
            }
            None => {
                let mut null = NullObserver;
                let $n = &mut $net.nodes[$node];
                let $buf = &mut $net.scratch;
                let $obs = &mut null;
                $body
            }
        }
    }};
}

/// A deterministic in-memory network of protocol nodes with FIFO delivery.
#[derive(Clone)]
pub struct LockStepNet {
    nodes: Vec<HierNode>,
    inbox: VecDeque<InFlight>,
    /// Log of `(node, mode)` grants, in delivery order.
    pub granted: Vec<(NodeId, Mode)>,
    /// Log of completed upgrades, in delivery order.
    pub upgraded: Vec<NodeId>,
    /// Total protocol messages sent so far.
    pub messages_sent: u64,
    /// When true (default), every delivery step runs the instantaneous
    /// safety audit and panics on violation.
    pub audit_each_step: bool,
    /// Operations driven so far (entry-point calls + deliveries); the
    /// timestamp stamped onto trace records.
    steps: u64,
    /// Reusable effect sink shared by every driven operation; drained into
    /// the inbox/logs after each entry-point call, so steady-state steps
    /// allocate nothing.
    scratch: EffectBuf,
    /// Optional shared event sink (cloning the net shares the sink).
    recorder: Option<Rc<RefCell<dyn Recorder>>>,
    /// Lock id stamped onto trace records.
    trace_lock: u32,
}

impl fmt::Debug for LockStepNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockStepNet")
            .field("nodes", &self.nodes)
            .field("inbox", &self.inbox)
            .field("granted", &self.granted)
            .field("upgraded", &self.upgraded)
            .field("messages_sent", &self.messages_sent)
            .field("audit_each_step", &self.audit_each_step)
            .field("steps", &self.steps)
            .field("recording", &self.recorder.is_some())
            .field("trace_lock", &self.trace_lock)
            .finish()
    }
}

impl LockStepNet {
    /// A star topology: node 0 holds the token, every other node's initial
    /// parent is node 0.
    pub fn star(n: usize) -> Self {
        assert!(n >= 1, "need at least one node");
        Self::star_with_config(n, ProtocolConfig::paper())
    }

    /// [`LockStepNet::star`] with a custom protocol configuration.
    pub fn star_with_config(n: usize, config: ProtocolConfig) -> Self {
        let mut parents = vec![None];
        parents.extend((1..n).map(|_| Some(0u32)));
        Self::with_parents(&parents, config)
    }

    /// Build an arbitrary initial tree. `parents[i]` is node `i`'s initial
    /// parent; exactly one entry must be `None` (the initial token node).
    pub fn with_parents(parents: &[Option<u32>], config: ProtocolConfig) -> Self {
        let roots = parents.iter().filter(|p| p.is_none()).count();
        assert_eq!(roots, 1, "exactly one root/token node required");
        let nodes = parents
            .iter()
            .enumerate()
            .map(|(i, p)| match p {
                None => HierNode::with_token(NodeId(i as u32), config),
                Some(parent) => {
                    assert_ne!(*parent as usize, i, "node cannot parent itself");
                    HierNode::new(NodeId(i as u32), NodeId(*parent), config)
                }
            })
            .collect();
        LockStepNet {
            nodes,
            inbox: VecDeque::new(),
            granted: Vec::new(),
            upgraded: Vec::new(),
            messages_sent: 0,
            audit_each_step: true,
            steps: 0,
            scratch: EffectBuf::new(),
            recorder: None,
            trace_lock: 0,
        }
    }

    /// Attach a shared [`Recorder`]: every subsequent operation emits its
    /// structured protocol events into `sink`, stamped with the net's step
    /// count as the timestamp and `lock` as the lock id.
    pub fn record_into(&mut self, lock: u32, sink: Rc<RefCell<dyn Recorder>>) {
        self.trace_lock = lock;
        self.recorder = Some(sink);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the net has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable view of a node.
    pub fn node(&self, id: u32) -> &HierNode {
        &self.nodes[id as usize]
    }

    /// Mutable access to a node, for tests that drive entry points the
    /// convenience wrappers do not cover (e.g. prioritized acquires). Route
    /// the returned effects back through [`Self::inject_effects`].
    pub fn node_mut(&mut self, id: u32) -> &mut HierNode {
        &mut self.nodes[id as usize]
    }

    /// Feed effects produced by a direct [`Self::node_mut`] call into the
    /// network (sends become in-flight messages; grants/upgrades are logged).
    pub fn inject_effects(&mut self, from: NodeId, effects: Vec<Effect>) {
        for effect in effects {
            self.scratch.push(effect);
        }
        self.absorb_scratch(from);
    }

    /// All nodes, for audits.
    pub fn nodes(&self) -> &[HierNode] {
        &self.nodes
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> Vec<InFlight> {
        self.inbox.iter().cloned().collect()
    }

    /// Issue an acquire; panics on API misuse (see [`Self::try_acquire`]).
    pub fn acquire(&mut self, id: u32, mode: Mode) {
        self.try_acquire(id, mode).expect("acquire misuse");
    }

    /// Issue an acquire, surfacing API misuse as an error.
    pub fn try_acquire(&mut self, id: u32, mode: Mode) -> Result<(), AcquireError> {
        let result = drive_into!(self, id as usize, |n, buf, obs| n
            .on_acquire_into(mode, 0, buf, obs));
        self.absorb_scratch(NodeId(id));
        result
    }

    /// Issue a release; panics on API misuse.
    pub fn release(&mut self, id: u32) {
        self.try_release(id).expect("release misuse");
    }

    /// Issue a release, surfacing API misuse as an error.
    pub fn try_release(&mut self, id: u32) -> Result<(), ReleaseError> {
        let result = drive_into!(self, id as usize, |n, buf, obs| n.on_release_into(buf, obs));
        self.absorb_scratch(NodeId(id));
        result
    }

    /// Issue a Rule 7 upgrade; panics on API misuse.
    pub fn upgrade(&mut self, id: u32) {
        self.try_upgrade(id).expect("upgrade misuse");
    }

    /// Issue a Rule 7 upgrade, surfacing API misuse as an error.
    pub fn try_upgrade(&mut self, id: u32) -> Result<(), UpgradeError> {
        let result = drive_into!(self, id as usize, |n, buf, obs| n.on_upgrade_into(buf, obs));
        self.absorb_scratch(NodeId(id));
        result
    }

    /// Deliver the oldest in-flight message. Returns `false` when idle.
    pub fn deliver_one(&mut self) -> bool {
        let Some(flight) = self.inbox.pop_front() else {
            return false;
        };
        let to = flight.to;
        drive_into!(self, to.index(), |n, buf, obs| n.on_message_into(
            flight.from,
            flight.message,
            buf,
            obs
        ));
        self.absorb_scratch(to);
        if self.audit_each_step {
            self.assert_safe();
        }
        true
    }

    /// Deliver messages until the network is quiet.
    pub fn deliver_all(&mut self) {
        let mut steps = 0u64;
        while self.deliver_one() {
            steps += 1;
            assert!(
                steps < 1_000_000,
                "runaway message storm: protocol does not quiesce"
            );
        }
    }

    /// Run the instantaneous safety audit; panics with the violations.
    pub fn assert_safe(&self) {
        let errors = self.audit_now(false);
        assert!(errors.is_empty(), "safety audit failed: {errors:?}");
    }

    /// Run the audit; `quiescent` additionally enables structural and
    /// liveness checks (call only when the inbox is empty and no request is
    /// expected to be outstanding).
    pub fn audit_now(&self, quiescent: bool) -> Vec<AuditError> {
        audit(&self.nodes, &self.in_flight(), quiescent)
    }

    /// Drain the scratch sink into the network: sends become in-flight
    /// messages, grants/upgrades are logged. Disjoint field borrows keep
    /// this a single pass with no temporary.
    fn absorb_scratch(&mut self, from: NodeId) {
        let LockStepNet {
            nodes,
            scratch,
            inbox,
            granted,
            upgraded,
            messages_sent,
            ..
        } = self;
        let epoch = nodes[from.index()].epoch();
        for effect in scratch.drain() {
            match effect {
                Effect::Send { to, message } => {
                    *messages_sent += 1;
                    inbox.push_back(InFlight {
                        from,
                        to,
                        epoch,
                        message,
                    });
                }
                Effect::Granted { mode } => granted.push((from, mode)),
                Effect::Upgraded => upgraded.push(from),
            }
        }
    }

    /// Convenience: was `(node, mode)` granted at some point?
    pub fn was_granted(&self, id: u32, mode: Mode) -> bool {
        self.granted.contains(&(NodeId(id), mode))
    }

    /// Deliver all traffic, then assert full quiescent-state invariants.
    pub fn settle(&mut self) {
        self.deliver_all();
        let errors = self.audit_now(true);
        assert!(errors.is_empty(), "quiescent audit failed: {errors:?}");
    }

    /// Deliver one message chosen by `pick` among the in-flight *channels*,
    /// preserving per-(sender, receiver) FIFO order — the guarantee TCP and
    /// MPI give and the protocol assumes. `pick(k)` must return a value in
    /// `0..k`; it selects which distinct channel's oldest message to deliver.
    /// Returns `false` when idle.
    pub fn deliver_one_with(&mut self, pick: impl FnOnce(usize) -> usize) -> bool {
        // Collect the distinct (from, to) channels in first-appearance order.
        let mut channels: Vec<(NodeId, NodeId)> = Vec::new();
        for f in &self.inbox {
            if !channels.contains(&(f.from, f.to)) {
                channels.push((f.from, f.to));
            }
        }
        if channels.is_empty() {
            return false;
        }
        let chosen = channels[pick(channels.len()) % channels.len()];
        let pos = self
            .inbox
            .iter()
            .position(|f| (f.from, f.to) == chosen)
            .expect("channel came from the inbox");
        let flight = self.inbox.remove(pos).expect("position is valid");
        let to = flight.to;
        drive_into!(self, to.index(), |n, buf, obs| n.on_message_into(
            flight.from,
            flight.message,
            buf,
            obs
        ));
        self.absorb_scratch(to);
        if self.audit_each_step {
            self.assert_safe();
        }
        true
    }

    /// Forward in-flight messages destined to `id` only (for tests that need
    /// fine-grained interleavings). Returns how many were delivered.
    pub fn deliver_to(&mut self, id: u32) -> usize {
        let mut delivered = 0;
        let mut rest = VecDeque::new();
        while let Some(flight) = self.inbox.pop_front() {
            if flight.to == NodeId(id) {
                let to = flight.to;
                drive_into!(self, to.index(), |n, buf, obs| n.on_message_into(
                    flight.from,
                    flight.message,
                    buf,
                    obs
                ));
                self.absorb_scratch(to);
                delivered += 1;
                if self.audit_each_step {
                    self.assert_safe();
                }
            } else {
                rest.push_back(flight);
            }
        }
        // Preserve relative order of the untouched messages, followed by any
        // new traffic generated during delivery (absorb appended to inbox).
        rest.extend(self.inbox.drain(..));
        self.inbox = rest;
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_initialises_token_at_zero() {
        let net = LockStepNet::star(4);
        assert!(net.node(0).has_token());
        for i in 1..4 {
            assert_eq!(net.node(i).parent(), Some(NodeId(0)));
        }
        assert!(net.audit_now(true).is_empty());
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn with_parents_rejects_multiple_roots() {
        let _ = LockStepNet::with_parents(&[None, None], ProtocolConfig::paper());
    }

    #[test]
    fn token_node_self_grant_costs_no_messages() {
        let mut net = LockStepNet::star(3);
        net.acquire(0, Mode::Write);
        assert!(net.was_granted(0, Mode::Write));
        assert_eq!(net.messages_sent, 0);
    }

    #[test]
    fn remote_grant_round_trip() {
        let mut net = LockStepNet::star(3);
        net.acquire(1, Mode::Read);
        net.settle();
        assert!(net.was_granted(1, Mode::Read));
        assert_eq!(net.node(1).held(), Mode::Read);
        // An idle token copy-grants shared modes and stays put (stable-root
        // policy); the requester joins the copyset instead.
        assert!(net.node(0).has_token());
        assert_eq!(net.node(0).copyset().get(&NodeId(1)), Some(&Mode::Read));
        net.release(1);
        net.settle();
        assert!(net.node(0).copyset().is_empty(), "release cleans the entry");

        // An exclusive mode, by contrast, migrates the idle token.
        net.acquire(1, Mode::Write);
        net.settle();
        assert!(net.node(1).has_token(), "W migrates ownership");
        assert_eq!(net.node(0).parent(), Some(NodeId(1)));
        net.release(1);
        net.settle();
    }

    #[test]
    fn recorder_counts_every_send() {
        use dlm_trace::TraceStats;
        let stats: Rc<RefCell<TraceStats>> = Rc::new(RefCell::new(TraceStats::new()));
        let mut net = LockStepNet::star(4);
        net.record_into(7, stats.clone());
        net.acquire(1, Mode::Read);
        net.settle();
        net.acquire(2, Mode::Write); // queues at the token; freezes R
        net.release(1);
        net.settle();
        net.release(2);
        net.settle();
        let stats = stats.borrow();
        assert_eq!(
            stats.total_sends(),
            net.messages_sent,
            "send-class events must equal messages sent: {:?}",
            stats.sends
        );
        assert!(stats.kinds.get("request_sent") >= 1);
        assert!(stats.kinds.get("token_sent") >= 1, "W moves the token");
    }

    #[test]
    fn deliver_to_filters_by_destination() {
        let mut net = LockStepNet::star(3);
        net.acquire(1, Mode::Read); // request to node 0 in flight
        net.acquire(2, Mode::Read); // request to node 0 in flight
        assert_eq!(net.deliver_to(0), 2);
    }
}
