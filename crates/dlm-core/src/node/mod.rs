//! The per-node, per-lock protocol state machine.

mod acquire;
mod handlers;
mod queue;
mod recovery;
mod state;

use crate::config::ProtocolConfig;
use crate::flatmap::{CopySet, FlatMap, MAP_INLINE};
use crate::ids::NodeId;
use crate::message::QueuedRequest;
use dlm_modes::{Mode, ModeSet};
use dlm_trace::{Observer, ProtocolEvent};
use std::collections::VecDeque;

/// One node's instance of the hierarchical locking protocol for one lock
/// object.
///
/// The paper's per-node state is the tuple `(MO, MH, MP)` — owned, held and
/// pending mode — plus the parent link, the copyset, the local queue, the
/// frozen-mode set and the token flag. All protocol activity goes through
/// four entry points which return [`crate::Effect`]s for the runtime:
///
/// * [`HierNode::on_acquire`] — the application requests the lock (Rule 2),
/// * [`HierNode::on_upgrade`] — atomic `U`→`W` upgrade (Rule 7),
/// * [`HierNode::on_release`] — the application leaves its critical section
///   (Rule 5),
/// * [`HierNode::on_message`] — a protocol message arrived (Rules 3–6).
///
/// ```
/// use dlm_core::{Effect, HierNode, Message, Mode, NodeId, ProtocolConfig, QueuedRequest};
///
/// // A two-node system driven by hand: node 0 has the token.
/// let mut token = HierNode::with_token(NodeId(0), ProtocolConfig::paper());
/// let mut leaf = HierNode::new(NodeId(1), NodeId(0), ProtocolConfig::paper());
///
/// // The leaf requests Read; one request message comes out.
/// let effects = leaf.on_acquire(Mode::Read).unwrap();
/// let Effect::Send { to, message } = &effects[0] else { panic!() };
/// assert_eq!(*to, NodeId(0));
///
/// // Deliver it to the token node: an idle token copy-grants shared modes.
/// let effects = token.on_message(NodeId(1), message.clone());
/// let Effect::Send { message: grant, .. } = &effects[0] else { panic!() };
///
/// // Deliver the grant: the leaf enters its critical section.
/// let effects = leaf.on_message(NodeId(0), grant.clone());
/// assert!(effects.iter().any(|e| matches!(e, Effect::Granted { mode: Mode::Read })));
/// assert_eq!(leaf.held(), Mode::Read);
/// assert_eq!(token.owned(), Mode::Read); // the copyset records the grant
/// ```
#[derive(Debug, Clone)]
pub struct HierNode {
    /// This node's identity.
    id: NodeId,
    /// Feature toggles (ablations); `ProtocolConfig::paper()` is the paper.
    config: ProtocolConfig,
    /// Parent in the dynamic tree (`None` iff this node holds the token).
    parent: Option<NodeId>,
    /// True iff this node is the token node.
    has_token: bool,
    /// `MH`: the mode this node's application currently holds.
    held: Mode,
    /// `MO` (Definition 3): the strongest mode held anywhere in the subtree
    /// rooted here, as far as this node knows. Cached; always equals
    /// `join(held, copyset modes)`.
    owned: Mode,
    /// `MP`: the outstanding request of the local application, if any.
    pending: Option<QueuedRequest>,
    /// Children whose requests this node granted (Definition 4), with the
    /// owned mode they last reported. Sorted flat map (ascending `NodeId`,
    /// same deterministic iteration order as the `BTreeMap` it replaced).
    copyset: CopySet,
    /// The local request queue (Rule 4); FIFO.
    queue: VecDeque<QueuedRequest>,
    /// Modes frozen at this node (Rule 6). At the token node this is
    /// recomputed from the queue; elsewhere it is whatever the parent last
    /// pushed via `SetFrozen`.
    frozen: ModeSet,
    /// The frozen set last communicated to each copyset child, so freeze
    /// updates are only sent to children for which they matter.
    frozen_sent: FlatMap<ModeSet, MAP_INLINE>,
    /// Grants (copy grants and token transfers) sent per peer; used to
    /// detect stale releases (see `Message::Release::ack`).
    grants_sent: FlatMap<u64, MAP_INLINE>,
    /// Grants received per peer; stamped into outgoing releases.
    grants_received: FlatMap<u64, MAP_INLINE>,
    /// True while this node believes its current parent holds a copyset
    /// entry for it. Set on grant/token interactions, cleared when the node
    /// reports `NoLock` to its parent. Drives the *detach* message on
    /// re-parenting (see `handlers.rs`): without it, a node granted by a
    /// non-parent would leave a permanently stale entry at its old parent,
    /// inflating that subtree's owned mode forever and starving queued
    /// writers (found by the property tests; DESIGN.md §3).
    registered: bool,
    /// Count of defensively handled impossible-by-design situations (e.g. a
    /// node receiving its own already-answered request). Zero in every test.
    anomalies: u64,
    /// Crash-recovery generation number (DESIGN.md §17). Starts at 0 and is
    /// bumped by every view change (`on_peer_down` / `Message::Recover`).
    /// Frames are stamped with the sender's epoch at send time; a receiver
    /// fences (drops) any frame whose stamp differs from its own epoch, so a
    /// token or grant from a dead generation can never resurrect authority.
    epoch: u32,
}

impl HierNode {
    /// Create a node without the token whose initial parent is `parent`.
    pub fn new(id: NodeId, parent: NodeId, config: ProtocolConfig) -> Self {
        HierNode {
            id,
            config,
            parent: Some(parent),
            has_token: false,
            held: Mode::NoLock,
            owned: Mode::NoLock,
            pending: None,
            copyset: CopySet::new(),
            queue: VecDeque::new(),
            frozen: ModeSet::EMPTY,
            frozen_sent: FlatMap::new(),
            grants_sent: FlatMap::new(),
            grants_received: FlatMap::new(),
            registered: false,
            anomalies: 0,
            epoch: 0,
        }
    }

    /// Create the initial token node (the root of the initial tree).
    pub fn with_token(id: NodeId, config: ProtocolConfig) -> Self {
        HierNode {
            parent: None,
            has_token: true,
            ..HierNode::new(id, id, config)
        }
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The mode currently held by the local application (`MH`).
    pub fn held(&self) -> Mode {
        self.held
    }

    /// The owned mode (`MO`, Definition 3): strongest mode known to be held
    /// in the subtree rooted here.
    pub fn owned(&self) -> Mode {
        self.owned
    }

    /// The pending request (`MP`), if any.
    pub fn pending(&self) -> Option<Mode> {
        self.pending.map(|p| p.mode)
    }

    /// The full pending request record (mode + upgrade flag + priority), if
    /// any. The model checker uses this to classify self-grants.
    pub fn pending_request(&self) -> Option<QueuedRequest> {
        self.pending
    }

    /// True if the pending request is a Rule 7 upgrade.
    pub fn pending_is_upgrade(&self) -> bool {
        self.pending.map(|p| p.upgrade).unwrap_or(false)
    }

    /// True iff this node currently holds the token.
    pub fn has_token(&self) -> bool {
        self.has_token
    }

    /// Current parent link (`None` iff token node).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The copyset: children and the owned mode they last reported.
    pub fn copyset(&self) -> &CopySet {
        &self.copyset
    }

    /// Number of locally queued requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The locally queued requests, front (oldest) first.
    pub fn queued(&self) -> impl Iterator<Item = &QueuedRequest> {
        self.queue.iter()
    }

    /// Modes currently frozen at this node.
    pub fn frozen(&self) -> ModeSet {
        self.frozen
    }

    /// Defensive-path counter; see the field docs. Always zero under the
    /// modelled semantics — asserted by the property tests.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    /// The crash-recovery generation this node is operating in (0 until the
    /// first view change; see DESIGN.md §17). Runtimes stamp this value onto
    /// every frame they transmit for this lock.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The protocol configuration this node runs.
    pub fn protocol_config(&self) -> ProtocolConfig {
        self.config
    }

    /// Recompute the owned mode from held + copyset (Definition 3).
    pub(crate) fn recompute_owned(&self) -> Mode {
        self.copyset
            .iter()
            .fold(self.held, |acc, (_, m)| acc.join(m))
    }

    /// The owned mode with node `who`'s copyset contribution removed, and —
    /// when `who` is this node itself — the held mode removed too. Used for
    /// Rule 7 upgrade compatibility checks: the upgrader's own `U` must not
    /// conflict with its own `W` request.
    pub(crate) fn owned_excluding(&self, who: NodeId) -> Mode {
        let base = if who == self.id {
            Mode::NoLock
        } else {
            self.held
        };
        self.copyset
            .iter()
            .filter(|&(c, _)| c != who)
            .fold(base, |acc, (_, m)| acc.join(m))
    }

    /// Record a weaker owned report from (or removal of) a copyset child.
    pub(crate) fn update_copyset(&mut self, child: NodeId, reported: Mode) {
        if reported == Mode::NoLock {
            self.copyset.remove(&child);
            self.frozen_sent.remove(&child);
        } else {
            self.copyset.insert(child, reported);
        }
    }

    pub(crate) fn note_anomaly(&mut self) {
        self.anomalies += 1;
    }

    /// Insert a request into the local queue: before the first entry of
    /// strictly lower priority, after everything of equal or higher priority
    /// (stable ⇒ FIFO within a priority level; all-zero priorities reproduce
    /// the paper's plain FIFO exactly).
    pub(crate) fn enqueue<O: Observer + ?Sized>(&mut self, req: QueuedRequest, obs: &mut O) {
        let at = self
            .queue
            .iter()
            .position(|q| q.priority < req.priority)
            .unwrap_or(self.queue.len());
        self.queue.insert(at, req);
        if obs.enabled() {
            obs.emit(
                self.id.0,
                ProtocolEvent::RequestQueued {
                    requester: req.from.0,
                    mode: req.mode,
                    depth: self.queue.len(),
                },
            );
        }
    }

    /// Record that a grant (copy or token) is being sent to `to`.
    pub(crate) fn count_grant_sent(&mut self, to: NodeId) {
        let n = self.grants_sent.get(&to).copied().unwrap_or(0);
        self.grants_sent.insert(to, n + 1);
    }

    /// Record that a grant (copy or token) arrived from `from`.
    pub(crate) fn count_grant_received(&mut self, from: NodeId) {
        let n = self.grants_received.get(&from).copied().unwrap_or(0);
        self.grants_received.insert(from, n + 1);
    }

    /// The ack value to stamp into a release sent to `to`.
    pub(crate) fn release_ack(&self, to: NodeId) -> u64 {
        self.grants_received.get(&to).copied().unwrap_or(0)
    }

    /// True if a release from `child` carrying `ack` predates a grant this
    /// node has already sent to `child` (i.e. the release is stale).
    pub(crate) fn release_is_stale(&self, child: NodeId, ack: u64) -> bool {
        if self.config.accept_stale_releases {
            // Test-only seeded bug: treat every release as fresh. See
            // `ProtocolConfig::accept_stale_releases`.
            return false;
        }
        ack < self.grants_sent.get(&child).copied().unwrap_or(0)
    }

    /// A copy of this node with every node identity (its own id, the parent
    /// link, copyset/frozen-sent/grant-counter keys, and queued or pending
    /// requesters) mapped through `map`.
    ///
    /// The protocol never orders or compares node ids except for equality, so
    /// relabelling through a bijection commutes with every entry point: for a
    /// permutation σ, `σ(n).on_message(σ(from), σ(m))` produces `σ` of the
    /// effects of `n.on_message(from, m)`. The model checker's symmetry
    /// reduction (`dlm-check`) relies on exactly this equivariance to collapse
    /// permuted clusters into one canonical state. Sorted flat maps are
    /// rebuilt, so iteration order stays canonical under the new labels.
    pub fn relabeled(&self, map: impl Fn(NodeId) -> NodeId) -> HierNode {
        let relabel_req = |q: &QueuedRequest| QueuedRequest {
            from: map(q.from),
            ..*q
        };
        let mut copyset = CopySet::new();
        for (child, mode) in self.copyset.iter() {
            copyset.insert(map(child), mode);
        }
        let mut frozen_sent = FlatMap::new();
        for (child, set) in self.frozen_sent.iter() {
            frozen_sent.insert(map(child), set);
        }
        let mut grants_sent = FlatMap::new();
        for (peer, count) in self.grants_sent.iter() {
            grants_sent.insert(map(peer), count);
        }
        let mut grants_received = FlatMap::new();
        for (peer, count) in self.grants_received.iter() {
            grants_received.insert(map(peer), count);
        }
        HierNode {
            id: map(self.id),
            config: self.config,
            parent: self.parent.map(&map),
            has_token: self.has_token,
            held: self.held,
            owned: self.owned,
            pending: self.pending.as_ref().map(relabel_req),
            copyset,
            queue: self.queue.iter().map(relabel_req).collect(),
            frozen: self.frozen,
            frozen_sent,
            grants_sent,
            grants_received,
            registered: self.registered,
            anomalies: self.anomalies,
            epoch: self.epoch,
        }
    }
}

impl crate::fingerprint::Fingerprintable for HierNode {
    fn fingerprint_into(&self, h: &mut crate::fingerprint::FpHasher) {
        // Exhaustive destructuring: adding a field to HierNode without
        // extending this fingerprint is a compile error (the model checker
        // must never key its memoization on a partial view of node state).
        let HierNode {
            id,
            config,
            parent,
            has_token,
            held,
            owned,
            pending,
            copyset,
            queue,
            frozen,
            frozen_sent,
            grants_sent,
            grants_received,
            registered,
            anomalies,
            epoch,
        } = self;
        h.write(id);
        h.write(config);
        h.write(parent);
        h.write_bool(*has_token);
        h.write(held);
        h.write(owned);
        match pending {
            None => h.write_u8(0),
            Some(req) => {
                h.write_u8(1);
                h.write(req);
            }
        }
        h.write_usize(copyset.len());
        for (child, mode) in copyset.iter() {
            h.write(&child);
            h.write(&mode);
        }
        h.write_usize(queue.len());
        for req in queue {
            h.write(req);
        }
        h.write(frozen);
        h.write_usize(frozen_sent.len());
        for (child, set) in frozen_sent.iter() {
            h.write(&child);
            h.write(&set);
        }
        h.write_usize(grants_sent.len());
        for (peer, count) in grants_sent.iter() {
            h.write(&peer);
            h.write_u64(count);
        }
        h.write_usize(grants_received.len());
        for (peer, count) in grants_received.iter() {
            h.write(&peer);
            h.write_u64(count);
        }
        h.write_bool(*registered);
        h.write_u64(*anomalies);
        h.write_u32(*epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::paper()
    }

    #[test]
    fn fresh_nodes_have_paper_initial_state() {
        let root = HierNode::with_token(NodeId(0), cfg());
        assert!(root.has_token());
        assert_eq!(root.parent(), None);
        assert_eq!(root.held(), Mode::NoLock);
        assert_eq!(root.owned(), Mode::NoLock);
        assert_eq!(root.pending(), None);
        assert_eq!(root.queue_len(), 0);
        assert!(root.frozen().is_empty());

        let leaf = HierNode::new(NodeId(3), NodeId(0), cfg());
        assert!(!leaf.has_token());
        assert_eq!(leaf.parent(), Some(NodeId(0)));
        assert_eq!(leaf.anomalies(), 0);
    }

    #[test]
    fn owned_is_join_of_held_and_copyset() {
        let mut n = HierNode::with_token(NodeId(0), cfg());
        n.held = Mode::IntentRead;
        n.copyset.insert(NodeId(1), Mode::Read);
        n.copyset.insert(NodeId(2), Mode::IntentRead);
        assert_eq!(n.recompute_owned(), Mode::Read);
        // Incomparable pair joins to Write.
        n.copyset.insert(NodeId(3), Mode::IntentWrite);
        assert_eq!(n.recompute_owned(), Mode::Write);
    }

    #[test]
    fn owned_excluding_removes_one_contribution() {
        let mut n = HierNode::with_token(NodeId(0), cfg());
        n.held = Mode::Upgrade;
        n.copyset.insert(NodeId(1), Mode::IntentRead);
        assert_eq!(n.owned_excluding(NodeId(0)), Mode::IntentRead);
        assert_eq!(n.owned_excluding(NodeId(1)), Mode::Upgrade);
        assert_eq!(n.owned_excluding(NodeId(9)), Mode::Upgrade);
    }

    #[test]
    fn update_copyset_removes_on_nolock() {
        let mut n = HierNode::with_token(NodeId(0), cfg());
        n.update_copyset(NodeId(1), Mode::Read);
        assert_eq!(n.copyset().get(&NodeId(1)), Some(&Mode::Read));
        n.update_copyset(NodeId(1), Mode::IntentRead);
        assert_eq!(n.copyset().get(&NodeId(1)), Some(&Mode::IntentRead));
        n.update_copyset(NodeId(1), Mode::NoLock);
        assert!(n.copyset().is_empty());
    }
}
