//! Message receipt: the protocol reactions of Rules 3–6.

use super::HierNode;
use crate::effect::{Effect, EffectBuf};
use crate::ids::NodeId;
use crate::message::{Message, QueuedRequest};
use dlm_modes::{
    child_can_grant, compatible, queue_or_forward, Mode, ModeSet, QueueOrForward, REQUEST_MODES,
};
use dlm_trace::{NullObserver, Observer, ProtocolEvent};

impl HierNode {
    /// Dispatch a received protocol message. `from` is the transport-level
    /// sender (the immediate hop, not necessarily the original requester).
    ///
    /// Convenience wrapper over [`Self::on_message_into`] that allocates a
    /// fresh `Vec` per call; hot paths keep a reusable [`EffectBuf`] instead.
    pub fn on_message(&mut self, from: NodeId, message: Message) -> Vec<Effect> {
        self.on_message_observed(from, message, &mut NullObserver)
    }

    /// [`Self::on_message`] with an [`Observer`] receiving the structured
    /// protocol events of this operation, returning a fresh `Vec`.
    pub fn on_message_observed<O: Observer + ?Sized>(
        &mut self,
        from: NodeId,
        message: Message,
        obs: &mut O,
    ) -> Vec<Effect> {
        let mut effects = EffectBuf::new();
        self.on_message_into(from, message, &mut effects, obs);
        effects.take_vec()
    }

    /// The allocation-free message entry point: effects are pushed into the
    /// caller-owned `effects` sink. The observer is a generic parameter so
    /// the [`NullObserver`] path monomorphizes to straight-line code with
    /// every event site removed.
    pub fn on_message_into<O: Observer + ?Sized>(
        &mut self,
        from: NodeId,
        message: Message,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        match message {
            Message::Request(req) => self.handle_request(req, effects, obs),
            Message::Grant { mode } => self.handle_grant(from, mode, effects, obs),
            Message::Token {
                mode,
                granter_owned,
                queue,
                frozen,
            } => self.handle_token(from, mode, granter_owned, queue, frozen, effects, obs),
            Message::Release { new_owned, ack } => {
                self.handle_release(from, new_owned, ack, effects, obs)
            }
            Message::SetFrozen { modes } => self.handle_set_frozen(modes, effects, obs),
            Message::Recover {
                dead,
                new_root,
                epoch,
                survivors,
            } => self.on_peer_down_into(dead, new_root, epoch, &survivors, effects, obs),
        }
    }

    /// Rules 3, 4 and 6: a request reached this node.
    fn handle_request<O: Observer + ?Sized>(
        &mut self,
        req: QueuedRequest,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        if req.from == self.id {
            // A request can only chase its own sender through stale routing
            // after its answer already arrived; re-issue it if it is somehow
            // still pending, drop it otherwise. Never reached in the
            // modelled semantics (asserted by the property tests via
            // `anomalies`).
            self.note_anomaly();
            if self.pending == Some(req) && !self.has_token {
                let parent = self.parent.expect("non-token node has a parent");
                effects.push(Effect::send(parent, Message::Request(req)));
                if obs.enabled() {
                    obs.emit(
                        self.id.0,
                        ProtocolEvent::RequestSent {
                            to: parent.0,
                            mode: req.mode,
                            upgrade: req.upgrade,
                        },
                    );
                }
            }
            return;
        }

        if self.has_token {
            self.token_handle_request(req, effects, obs);
        } else {
            self.nontoken_handle_request(req, effects, obs);
        }
    }

    /// Rule 3.2 + Rule 4.2 + Rule 6 at the token node.
    fn token_handle_request<O: Observer + ?Sized>(
        &mut self,
        req: QueuedRequest,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        if self.queue.iter().any(|q| q.from == req.from) {
            // A node has at most one outstanding request, so a second
            // arrival from the same originator can only be a crash-recovery
            // re-issue (Rule R1) racing a queue entry that survived — either
            // carried here by a token transfer or kept by a surviving-holder
            // root. Keep the original's FIFO position, drop the duplicate.
            return;
        }
        let eff_owned = if req.upgrade {
            self.owned_excluding(req.from)
        } else {
            self.owned
        };
        // Note: no separate check against the queue is needed here — any
        // request compatible with `owned` but incompatible with some queued
        // entry is, by construction of Table 1(d), in the frozen set (the
        // freeze-set derivation test in `dlm-modes` pins this).
        let grantable = compatible(eff_owned, req.mode) && !self.frozen.contains(req.mode);
        if grantable {
            if !req.upgrade && self.keeps_token_for(eff_owned, req.mode) {
                self.grant_copy(req, effects, obs);
            } else {
                // Stronger than everything owned (for an upgrade:
                // everything else is quiescent): move the token.
                self.grant_token_transfer(req, effects, obs);
                return;
            }
        } else {
            // Rule 4.2: the token node queues what it cannot grant,
            // then freezes bypass-capable modes (Rule 6 / Table 1(d)).
            self.enqueue(req, obs);
        }
        self.refresh_frozen(effects, obs);
    }

    /// Rule 3.1 + Rule 4.1 at a non-token node.
    fn nontoken_handle_request<O: Observer + ?Sized>(
        &mut self,
        req: QueuedRequest,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        let grantable = self.protocol_config().child_grants
            && !req.upgrade
            && child_can_grant(self.owned, req.mode)
            && !self.frozen.contains(req.mode);
        if grantable {
            self.grant_copy(req, effects, obs);
            return;
        }
        // Rule 4.1 / Table 1(c): queue locally or forward to the parent,
        // keyed by our own pending mode (`MP`, NoLock when none).
        let pending_mode = self.pending.map(|p| p.mode).unwrap_or(Mode::NoLock);
        let decision = if self.protocol_config().local_queueing {
            queue_or_forward(pending_mode, req.mode)
        } else {
            QueueOrForward::Forward
        };
        match decision {
            QueueOrForward::Queue => self.enqueue(req, obs),
            QueueOrForward::Forward => {
                // Note: unlike Naimi's protocol, the forwarder must NOT
                // re-point its parent at the requester. Table 1(c)
                // deliberately forwards compatible requests *past* pending
                // requesters to preserve concurrency; combined with path
                // reversal, a wandering request would rewrite every pointer
                // it crosses toward its own requester and trap itself in a
                // permanent routing cycle (reproduced experimentally — a
                // two-node ping-pong storm). Path compression in this
                // protocol comes solely from grant-time re-parenting plus
                // the stable-root policy (`ProtocolConfig::
                // eager_idle_transfer`).
                let parent = self.parent.expect("non-token node has a parent");
                effects.push(Effect::send(parent, Message::Request(req)));
                if obs.enabled() {
                    obs.emit(
                        self.id.0,
                        ProtocolEvent::RequestForwarded {
                            to: parent.0,
                            requester: req.from.0,
                            mode: req.mode,
                        },
                    );
                }
            }
        }
    }

    /// Rule 3 grant receipt: our pending request was answered with a copy.
    /// We hold the mode, re-parent under the granter (path compression) and
    /// re-examine anything we queued while waiting (Rule 4 trigger
    /// "the pending request comes through").
    fn handle_grant<O: Observer + ?Sized>(
        &mut self,
        from: NodeId,
        mode: Mode,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        debug_assert_eq!(self.pending.map(|p| p.mode), Some(mode));
        debug_assert!(!self.pending.map(|p| p.upgrade).unwrap_or(false));
        self.count_grant_received(from);
        self.detach_from_old_parent(from, effects, obs);
        let old_parent = self.parent;
        self.pending = None;
        self.held = mode;
        self.parent = Some(from);
        self.registered = true;
        self.owned = self.recompute_owned();
        effects.push(Effect::Granted { mode });
        if obs.enabled() {
            obs.emit(
                self.id.0,
                ProtocolEvent::GrantReceived { from: from.0, mode },
            );
            if old_parent != Some(from) {
                obs.emit(
                    self.id.0,
                    ProtocolEvent::ParentChanged {
                        old: old_parent.map(|p| p.0),
                        new: Some(from.0),
                    },
                );
            }
        }
        self.serve_queue_nontoken(effects, obs);
    }

    /// On re-parenting to `new_parent`, clear any copyset entry the *old*
    /// parent holds for this node — the granter's fresh entry takes over the
    /// accounting. Coverage stays sound: a request is only sent (Rule 2)
    /// when the residual owned mode does not dominate the requested one, and
    /// a case analysis over the compatibility lattice shows every *grantable*
    /// such request has `granted >= residual` (e.g. residual IR underneath a
    /// granted R/U/IW/W; a residual U or IW never escalates, because
    /// everything compatible with it is below it and is self-admitted).
    /// Hence the granter's `join(old_entry, granted)` entry dominates this
    /// node's whole subtree and the old parent's entry is redundant — but
    /// left in place it would never be cleaned (releases go to the new
    /// parent only) and would starve incompatible requests forever.
    fn detach_from_old_parent<O: Observer + ?Sized>(
        &mut self,
        new_parent: NodeId,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        if !self.registered {
            return;
        }
        let Some(old_parent) = self.parent else {
            return;
        };
        if old_parent == new_parent {
            return;
        }
        let ack = self.release_ack(old_parent);
        effects.push(Effect::send(
            old_parent,
            Message::Release {
                new_owned: Mode::NoLock,
                ack,
            },
        ));
        if obs.enabled() {
            obs.emit(
                self.id.0,
                ProtocolEvent::ReleaseSent {
                    to: old_parent.0,
                    new_owned: Mode::NoLock,
                    ack,
                },
            );
        }
        self.registered = false;
    }

    /// Rule 3.2 token receipt: we are the new token node. Adopt the old
    /// token node as a child, merge the carried queue ahead of our local one
    /// (it is older in the distributed FIFO), then serve.
    #[allow(clippy::too_many_arguments)]
    fn handle_token<O: Observer + ?Sized>(
        &mut self,
        from: NodeId,
        mode: Mode,
        granter_owned: Mode,
        carried_queue: std::collections::VecDeque<QueuedRequest>,
        carried_frozen: ModeSet,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        debug_assert_eq!(self.pending.map(|p| p.mode), Some(mode));
        self.count_grant_received(from);
        self.detach_from_old_parent(from, effects, obs);
        let old_parent = self.parent;
        let upgrade = self.pending.map(|p| p.upgrade).unwrap_or(false);
        self.pending = None;
        self.has_token = true;
        self.parent = None;
        self.registered = false;
        if obs.enabled() {
            obs.emit(
                self.id.0,
                ProtocolEvent::TokenReceived {
                    from: from.0,
                    queued: carried_queue.len(),
                },
            );
            if old_parent.is_some() {
                obs.emit(
                    self.id.0,
                    ProtocolEvent::ParentChanged {
                        old: old_parent.map(|p| p.0),
                        new: None,
                    },
                );
            }
        }
        if upgrade {
            debug_assert_eq!(self.held, Mode::Upgrade);
            self.held = Mode::Write;
            effects.push(Effect::Upgraded);
            if obs.enabled() {
                obs.emit(self.id.0, ProtocolEvent::Upgraded);
            }
        } else {
            self.held = mode;
            effects.push(Effect::Granted { mode });
        }
        if granter_owned != Mode::NoLock {
            self.update_copyset(from, granter_owned);
        }
        self.owned = self.recompute_owned();

        let mut queue = carried_queue;
        queue.extend(self.queue.drain(..));
        self.queue = queue;
        // Drop any self-entry the carried queue may hold for the request the
        // token itself just answered.
        let me = self.id;
        self.queue
            .retain(|q| !(q.from == me && q.mode == mode && q.upgrade == upgrade));
        self.frozen = carried_frozen;
        self.serve_queue_token(effects, obs);
    }

    /// Rule 5 release receipt: a copyset child's owned mode changed.
    fn handle_release<O: Observer + ?Sized>(
        &mut self,
        from: NodeId,
        new_owned: Mode,
        ack: u64,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        let stale = self.release_is_stale(from, ack);
        if obs.enabled() {
            obs.emit(
                self.id.0,
                ProtocolEvent::ReleaseApplied {
                    from: from.0,
                    new_owned,
                    stale,
                },
            );
        }
        if stale {
            // A grant to `from` is (or was) in flight when this release was
            // emitted: the release predates state this node already pushed
            // toward `from`, so applying it would erase a live grant from the
            // copyset (a mutual-exclusion hole found by the property tests).
            // The child's next release carries an up-to-date ack and replaces
            // the entry, so staleness is bounded by one critical section.
            return;
        }
        self.update_copyset(from, new_owned);
        let old_owned = self.owned;
        self.owned = self.recompute_owned();
        if self.has_token {
            // Rule 5.1: weakened ownership may unblock queued requests.
            self.serve_queue_token(effects, obs);
        } else {
            // Rule 5.2: propagate the weakening toward the token if our own
            // aggregate changed (always, under the eager-release ablation).
            self.propagate_weakening(old_owned, effects, obs);
        }
    }

    /// Rule 6 transitive freezing: replace our frozen set with the parent's
    /// and forward to copyset children for which the change matters.
    fn handle_set_frozen<O: Observer + ?Sized>(
        &mut self,
        modes: ModeSet,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        if self.has_token {
            // Stale: we became the token after this was sent; our own queue
            // now defines the frozen set.
            return;
        }
        let old = self.frozen;
        self.frozen = modes;
        if old == modes {
            return;
        }
        if obs.enabled() {
            if modes.is_empty() {
                obs.emit(self.id.0, ProtocolEvent::Unfrozen);
            } else {
                obs.emit(self.id.0, ProtocolEvent::Frozen { modes });
            }
        }
        let delta = modes.difference(old).union(old.difference(modes));
        // Walk the copyset by index (it is not mutated here — only
        // `frozen_sent` is) instead of collecting the children into a
        // temporary Vec.
        for i in 0..self.copyset.len() {
            let (child, child_mode) = self.copyset.get_index(i);
            let relevant = REQUEST_MODES
                .iter()
                .any(|&m| delta.contains(m) && child_can_grant(child_mode, m));
            if relevant {
                self.frozen_sent.insert(child, modes);
                effects.push(Effect::send(child, Message::SetFrozen { modes }));
                if obs.enabled() {
                    obs.emit(self.id.0, ProtocolEvent::FreezeSent { to: child.0, modes });
                }
            }
        }
    }
}
