//! Local-queue service and freeze maintenance (Rules 4–6).

use super::HierNode;
use crate::effect::{Effect, EffectBuf};
use crate::message::{Message, QueuedRequest};
use dlm_modes::{child_can_grant, compatible, freeze_set, Mode, ModeSet, REQUEST_MODES};
use dlm_trace::{Observer, ProtocolEvent};

impl HierNode {
    /// Rule 5.1 queue service at the token node.
    ///
    /// Scans the FIFO queue; grants every entry that is compatible with the
    /// (possibly just weakened) owned mode, while a shadow `blocked` set
    /// enforces FIFO among queue entries themselves: once an entry cannot be
    /// granted, no later entry incompatible with it may overtake. A grant
    /// that must move the token ships the *remaining* queue along with it and
    /// ends this node's authority.
    pub(crate) fn serve_queue_token<O: Observer + ?Sized>(
        &mut self,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        debug_assert!(self.has_token);
        'rescan: loop {
            let mut blocked = ModeSet::EMPTY;
            for i in 0..self.queue.len() {
                let entry = self.queue[i];
                let eff_owned = if entry.upgrade {
                    self.owned_excluding(entry.from)
                } else {
                    self.owned
                };
                // Rule 7 upgrades are exempt from the FIFO shield: the
                // upgrader already *holds* U, so every queued entry that is
                // incompatible with the upgrade is itself waiting for that U
                // to go away — blocking the upgrade behind it would deadlock
                // (U-requester waits for the holder; holder's upgrade waits
                // behind the U-requester). The paper's "atomically changes
                // its mode from U to W" makes the jump explicit.
                let grantable = compatible(eff_owned, entry.mode)
                    && (entry.upgrade || !blocked.contains(entry.mode));
                if !grantable {
                    // FIFO shield: nothing incompatible with this waiting
                    // entry may be granted behind its back (§3.3).
                    for &m in &REQUEST_MODES {
                        if !compatible(m, entry.mode) {
                            blocked.insert(m);
                        }
                    }
                    continue;
                }
                self.queue.remove(i);
                if obs.enabled() {
                    obs.emit(
                        self.id.0,
                        ProtocolEvent::QueueServed {
                            requester: entry.from.0,
                            mode: entry.mode,
                            depth: self.queue.len(),
                        },
                    );
                }
                if entry.from == self.id {
                    self.grant_self(entry, effects, obs);
                } else if !entry.upgrade && self.keeps_token_for(eff_owned, entry.mode) {
                    self.grant_copy(entry, effects, obs);
                } else {
                    // Stronger than everything owned: the token itself moves,
                    // along with whatever is still queued.
                    self.grant_token_transfer(entry, effects, obs);
                    return;
                }
                // Owned may have changed (self-grant) and an entry was
                // removed; rescan from the front with a fresh shadow set.
                continue 'rescan;
            }
            break;
        }
        self.refresh_frozen(effects, obs);
    }

    /// Queue service at a non-token node after its own pending request was
    /// answered (the "pending request comes through" trigger of Rule 4).
    ///
    /// Entries that are now locally grantable (Rule 3.1 + Rule 6) are
    /// granted; the rest are forwarded to the parent — their queueing
    /// justification (Table 1(c)) referred to the pending mode that has just
    /// been resolved, so holding them longer could strand them.
    pub(crate) fn serve_queue_nontoken<O: Observer + ?Sized>(
        &mut self,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        debug_assert!(!self.has_token);
        // Pop-in-place: nothing below touches the queue, so this visits the
        // same entries in the same order as the drain-and-collect it
        // replaced, without the temporary Vec.
        while let Some(entry) = self.queue.pop_front() {
            if obs.enabled() {
                obs.emit(
                    self.id.0,
                    ProtocolEvent::QueueServed {
                        requester: entry.from.0,
                        mode: entry.mode,
                        depth: self.queue.len(),
                    },
                );
            }
            let grantable = self.config.child_grants
                && !entry.upgrade
                && entry.from != self.id
                && child_can_grant(self.owned, entry.mode)
                && !self.frozen.contains(entry.mode);
            if grantable {
                self.grant_copy(entry, effects, obs);
            } else {
                let parent = self.parent.expect("non-token node has a parent");
                effects.push(Effect::send(parent, Message::Request(entry)));
                if obs.enabled() {
                    obs.emit(
                        self.id.0,
                        ProtocolEvent::RequestForwarded {
                            to: parent.0,
                            requester: entry.from.0,
                            mode: entry.mode,
                        },
                    );
                }
            }
        }
    }

    /// Grant the local application's queued request (token node only).
    pub(crate) fn grant_self<O: Observer + ?Sized>(
        &mut self,
        entry: QueuedRequest,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        debug_assert_eq!(entry.from, self.id);
        self.pending = None;
        if entry.upgrade {
            debug_assert_eq!(self.held, Mode::Upgrade);
            self.held = Mode::Write;
            effects.push(Effect::Upgraded);
            if obs.enabled() {
                obs.emit(self.id.0, ProtocolEvent::Upgraded);
            }
        } else {
            self.held = entry.mode;
            effects.push(Effect::Granted { mode: entry.mode });
            if obs.enabled() {
                obs.emit(self.id.0, ProtocolEvent::LocalGrant { mode: entry.mode });
            }
        }
        self.owned = self.recompute_owned();
    }

    /// Decide whether a grantable (compatible, unfrozen) request is answered
    /// with a copy-grant (token stays) or a token transfer (Rule 3.2).
    ///
    /// `owned >= mode` always keeps the token (the paper's `MO >= MR` copy
    /// branch). An idle token (`owned == NoLock`) keeps it for shared-mode
    /// requests unless `eager_idle_transfer` asks for the literal Rule 3.2
    /// behaviour — see the discussion on
    /// [`crate::ProtocolConfig::eager_idle_transfer`].
    pub(crate) fn keeps_token_for(&self, eff_owned: Mode, mode: Mode) -> bool {
        if eff_owned.ge(mode) {
            return true;
        }
        eff_owned == Mode::NoLock
            && !self.config.eager_idle_transfer
            && !matches!(mode, Mode::Upgrade | Mode::Write)
    }

    /// Rule 3 copy-grant: admit `entry.from` into the copyset and answer it.
    /// Legal when `owned >= entry.mode` (then `owned` is unchanged) or at an
    /// idle token retaining the token for a shared mode (then `owned`
    /// becomes the granted mode).
    pub(crate) fn grant_copy<O: Observer + ?Sized>(
        &mut self,
        entry: QueuedRequest,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        debug_assert!(self.owned.ge(entry.mode) || (self.has_token && self.owned == Mode::NoLock));
        let recorded = self
            .copyset
            .get(&entry.from)
            .copied()
            .unwrap_or(Mode::NoLock)
            .join(entry.mode);
        self.copyset.insert(entry.from, recorded);
        self.owned = self.recompute_owned();
        self.count_grant_sent(entry.from);
        effects.push(Effect::send(
            entry.from,
            Message::Grant { mode: entry.mode },
        ));
        if obs.enabled() {
            obs.emit(
                self.id.0,
                ProtocolEvent::ChildGrant {
                    to: entry.from.0,
                    mode: entry.mode,
                },
            );
        }
    }

    /// Rule 3.2 token transfer: the requested mode exceeds everything owned.
    /// The old token node becomes a child of the requester; the residual
    /// queue and frozen set travel with the token (DESIGN.md §3 item 2).
    pub(crate) fn grant_token_transfer<O: Observer + ?Sized>(
        &mut self,
        entry: QueuedRequest,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        debug_assert!(self.has_token);
        debug_assert_ne!(entry.from, self.id);
        // The requester stops being our child: its mode (e.g. the U of an
        // upgrade) moves to the other side of the parent/child relation.
        self.copyset.remove(&entry.from);
        self.frozen_sent.remove(&entry.from);
        self.owned = self.recompute_owned();

        let queue = std::mem::take(&mut self.queue);
        let frozen = self.frozen;
        // Our own pending request, if any, is inside `queue` and will be
        // answered by the new token node like any other requester's.
        self.has_token = false;
        self.parent = Some(entry.from);
        // The receiver records us in its copyset iff our residual owned mode
        // is not NoLock (see `handle_token`).
        self.registered = self.owned != Mode::NoLock;

        self.count_grant_sent(entry.from);
        if obs.enabled() {
            obs.emit(
                self.id.0,
                ProtocolEvent::TokenSent {
                    to: entry.from.0,
                    mode: entry.mode,
                    queued: queue.len(),
                },
            );
            obs.emit(
                self.id.0,
                ProtocolEvent::ParentChanged {
                    old: None,
                    new: Some(entry.from.0),
                },
            );
        }
        effects.push(Effect::send(
            entry.from,
            Message::Token {
                mode: entry.mode,
                granter_owned: self.owned,
                queue,
                frozen,
            },
        ));
    }

    /// Rule 6 / Table 1(d): recompute the frozen set at the token node from
    /// the queued requests and push deltas to copyset children that could
    /// otherwise grant a frozen mode.
    pub(crate) fn refresh_frozen<O: Observer + ?Sized>(
        &mut self,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        debug_assert!(self.has_token);
        let mut fresh = ModeSet::EMPTY;
        if self.config.freezing {
            for entry in &self.queue {
                let eff_owned = if entry.upgrade {
                    self.owned_excluding(entry.from)
                } else {
                    self.owned
                };
                fresh = fresh.union(freeze_set(eff_owned, entry.mode));
            }
        }
        if fresh == self.frozen {
            // No change. Children informed earlier stay consistent; a child
            // left with a stale (over-large) frozen set after a token
            // transfer merely forwards requests it could have granted — a
            // small message cost, never a safety or liveness issue, since the
            // token serves every forwarded request.
            return;
        }
        self.frozen = fresh;
        if obs.enabled() {
            if fresh.is_empty() {
                obs.emit(self.id.0, ProtocolEvent::Unfrozen);
            } else {
                obs.emit(self.id.0, ProtocolEvent::Frozen { modes: fresh });
            }
        }
        // Notify exactly the children for which the change matters: those
        // whose recorded mode lets them grant some mode whose frozen status
        // changed (transitive freezing, §3.3). Walk the copyset by index
        // (only `frozen_sent` is mutated in the loop) instead of collecting
        // the children into a temporary Vec.
        for i in 0..self.copyset.len() {
            let (child, child_mode) = self.copyset.get_index(i);
            let last = self
                .frozen_sent
                .get(&child)
                .copied()
                .unwrap_or(ModeSet::EMPTY);
            if last == fresh {
                continue;
            }
            let delta = fresh.difference(last).union(last.difference(fresh));
            let relevant = REQUEST_MODES
                .iter()
                .any(|&m| delta.contains(m) && child_can_grant(child_mode, m));
            if relevant {
                self.frozen_sent.insert(child, fresh);
                effects.push(Effect::send(child, Message::SetFrozen { modes: fresh }));
                if obs.enabled() {
                    obs.emit(
                        self.id.0,
                        ProtocolEvent::FreezeSent {
                            to: child.0,
                            modes: fresh,
                        },
                    );
                }
            }
        }
    }
}
