//! Portable serialization of a [`HierNode`]'s protocol state.
//!
//! The multi-process harness audits a cluster globally: every `dlm-node`
//! process ships its per-lock states to the driver, which reassembles them
//! and runs [`crate::invariants::audit`] exactly as the in-process runtime
//! does at shutdown. The audit needs *all* protocol state — including
//! fields with no public accessor (`registered`, `frozen_sent`, the grant
//! counters) — so the codec lives inside `dlm-core` where it can see them.
//!
//! The format is a versioned little-endian byte layout, not `serde`:
//! `dlm-core` deliberately has no wire-format dependencies, and the layout
//! doubles as documentation of what "one lock's state" is. The
//! [`crate::config::ProtocolConfig`] is *not* serialized — all members of a
//! cluster share one configuration, so the decoder's caller supplies it.

use super::HierNode;
use crate::config::ProtocolConfig;
use crate::flatmap::{CopySet, FlatMap};
use crate::ids::NodeId;
use crate::message::QueuedRequest;
use dlm_modes::{Mode, ModeSet, ALL_MODES};
use std::collections::VecDeque;

/// Layout version; bump on any change to the byte format.
///
/// v2 added the crash-recovery `epoch` (a `u32` directly after the node id)
/// and a trailing copy of the version byte. The decoder still accepts v1
/// blobs — a pre-recovery peer's state is a valid epoch-0 state — but never
/// mixes layouts: the version appears at both ends of a v2 blob, so a
/// version byte promising one layout over the other's body fails the
/// trailer or exact-length check even where the two layouts would otherwise
/// re-align.
const STATE_VERSION: u8 = 2;

const FLAG_HAS_TOKEN: u8 = 1 << 0;
const FLAG_PARENT: u8 = 1 << 1;
const FLAG_PENDING: u8 = 1 << 2;
const FLAG_REGISTERED: u8 = 1 << 3;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_queued(out: &mut Vec<u8>, q: &QueuedRequest) {
    put_u32(out, q.from.0);
    out.push(q.mode.index() as u8);
    out.push(q.upgrade as u8);
    out.push(q.priority);
}

fn modeset_bits(set: ModeSet) -> u8 {
    set.iter().fold(0u8, |acc, m| acc | (1 << m.index()))
}

fn modeset_from_bits(bits: u8) -> Option<ModeSet> {
    if bits & !0b11_1111 != 0 {
        return None;
    }
    Some(ModeSet::from_modes(
        ALL_MODES
            .into_iter()
            .filter(|m| bits & (1 << m.index()) != 0),
    ))
}

/// Checked little-endian reader over the encoded state.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    fn mode(&mut self) -> Option<Mode> {
        Mode::from_index(self.u8()? as usize)
    }

    fn queued(&mut self) -> Option<QueuedRequest> {
        let from = NodeId(self.u32()?);
        let mode = self.mode()?;
        let upgrade = match self.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let priority = self.u8()?;
        Some(QueuedRequest {
            from,
            mode,
            upgrade,
            priority,
        })
    }
}

impl HierNode {
    /// Append this node's complete protocol state to `out`.
    ///
    /// The inverse is [`HierNode::decode_state`]; round-tripping preserves
    /// every field, so a decoded node is audit-equivalent to the original.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        out.push(STATE_VERSION);
        put_u32(out, self.id.0);
        put_u32(out, self.epoch);
        let mut flags = 0u8;
        if self.has_token {
            flags |= FLAG_HAS_TOKEN;
        }
        if self.parent.is_some() {
            flags |= FLAG_PARENT;
        }
        if self.pending.is_some() {
            flags |= FLAG_PENDING;
        }
        if self.registered {
            flags |= FLAG_REGISTERED;
        }
        out.push(flags);
        if let Some(parent) = self.parent {
            put_u32(out, parent.0);
        }
        out.push(self.held.index() as u8);
        out.push(self.owned.index() as u8);
        if let Some(pending) = &self.pending {
            put_queued(out, pending);
        }
        out.push(modeset_bits(self.frozen));
        put_u64(out, self.anomalies);
        put_u32(out, self.copyset.len() as u32);
        for (node, mode) in self.copyset.iter() {
            put_u32(out, node.0);
            out.push(mode.index() as u8);
        }
        put_u32(out, self.queue.len() as u32);
        for q in &self.queue {
            put_queued(out, q);
        }
        put_u32(out, self.frozen_sent.len() as u32);
        for (node, set) in self.frozen_sent.iter() {
            put_u32(out, node.0);
            out.push(modeset_bits(set));
        }
        put_u32(out, self.grants_sent.len() as u32);
        for (node, count) in self.grants_sent.iter() {
            put_u32(out, node.0);
            put_u64(out, count);
        }
        put_u32(out, self.grants_received.len() as u32);
        for (node, count) in self.grants_received.iter() {
            put_u32(out, node.0);
            put_u64(out, count);
        }
        out.push(STATE_VERSION);
    }

    /// Reconstruct a node from bytes written by [`HierNode::encode_state`].
    ///
    /// `config` must be the cluster's shared [`ProtocolConfig`] (it is not
    /// part of the encoding). Returns `None` on truncated or malformed
    /// input or an unknown layout version — never panics.
    pub fn decode_state(buf: &[u8], config: ProtocolConfig) -> Option<HierNode> {
        let mut c = Cursor { buf, pos: 0 };
        let version = c.u8()?;
        if version == 0 || version > STATE_VERSION {
            return None;
        }
        let id = NodeId(c.u32()?);
        let epoch = if version >= 2 { c.u32()? } else { 0 };
        let flags = c.u8()?;
        if flags & !(FLAG_HAS_TOKEN | FLAG_PARENT | FLAG_PENDING | FLAG_REGISTERED) != 0 {
            return None;
        }
        let parent = if flags & FLAG_PARENT != 0 {
            Some(NodeId(c.u32()?))
        } else {
            None
        };
        let held = c.mode()?;
        let owned = c.mode()?;
        let pending = if flags & FLAG_PENDING != 0 {
            Some(c.queued()?)
        } else {
            None
        };
        let frozen = modeset_from_bits(c.u8()?)?;
        let anomalies = c.u64()?;
        let mut copyset = CopySet::new();
        for _ in 0..c.u32()? {
            let node = NodeId(c.u32()?);
            copyset.insert(node, c.mode()?);
        }
        let mut queue = VecDeque::new();
        let count = c.u32()?;
        if count as usize > buf.len() {
            return None;
        }
        for _ in 0..count {
            queue.push_back(c.queued()?);
        }
        let mut frozen_sent = FlatMap::new();
        for _ in 0..c.u32()? {
            let node = NodeId(c.u32()?);
            frozen_sent.insert(node, modeset_from_bits(c.u8()?)?);
        }
        let mut grants_sent = FlatMap::new();
        for _ in 0..c.u32()? {
            let node = NodeId(c.u32()?);
            grants_sent.insert(node, c.u64()?);
        }
        let mut grants_received = FlatMap::new();
        for _ in 0..c.u32()? {
            let node = NodeId(c.u32()?);
            grants_received.insert(node, c.u64()?);
        }
        if version >= 2 && c.u8()? != version {
            return None;
        }
        if c.pos != buf.len() {
            return None;
        }
        Some(HierNode {
            id,
            config,
            epoch,
            parent,
            has_token: flags & FLAG_HAS_TOKEN != 0,
            held,
            owned,
            pending,
            copyset,
            queue,
            frozen,
            frozen_sent,
            grants_sent,
            grants_received,
            registered: flags & FLAG_REGISTERED != 0,
            anomalies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::Effect;

    fn encoded(node: &HierNode) -> Vec<u8> {
        let mut out = Vec::new();
        node.encode_state(&mut out);
        out
    }

    #[test]
    fn round_trip_fresh_nodes() {
        let config = ProtocolConfig::paper();
        for node in [
            HierNode::with_token(NodeId(0), config),
            HierNode::new(NodeId(3), NodeId(0), config),
        ] {
            let bytes = encoded(&node);
            let back = HierNode::decode_state(&bytes, config).expect("decodes");
            assert_eq!(encoded(&back), bytes, "re-encoding is identical");
            assert_eq!(back.id(), node.id());
            assert_eq!(back.has_token(), node.has_token());
            assert_eq!(back.parent(), node.parent());
        }
    }

    #[test]
    fn round_trip_active_state() {
        // Drive real protocol traffic so copyset, grant counters and
        // queue/pending state are all populated before the round trip.
        let config = ProtocolConfig::paper();
        let mut token = HierNode::with_token(NodeId(0), config);
        let mut leaf = HierNode::new(NodeId(1), NodeId(0), config);

        let effects = leaf.on_acquire(Mode::Read).unwrap();
        let Effect::Send { message, .. } = &effects[0] else {
            panic!("expected a request send");
        };
        let effects = token.on_message(NodeId(1), message.clone());
        let Effect::Send { message: grant, .. } = &effects[0] else {
            panic!("expected a grant send");
        };
        leaf.on_message(NodeId(0), grant.clone());
        // A conflicting local request leaves `pending` occupied at the token.
        let _ = token.on_acquire(Mode::Write);

        for node in [&token, &leaf] {
            let bytes = encoded(node);
            let back = HierNode::decode_state(&bytes, config).expect("decodes");
            assert_eq!(encoded(&back), bytes);
            assert_eq!(back.held(), node.held());
            assert_eq!(back.owned(), node.owned());
            assert_eq!(back.recompute_owned(), node.recompute_owned());
            assert_eq!(back.copyset().len(), node.copyset().len());
            assert_eq!(back.pending().is_some(), node.pending().is_some());
        }
    }

    #[test]
    fn malformed_input_is_rejected() {
        let config = ProtocolConfig::paper();
        let node = HierNode::with_token(NodeId(0), config);
        let bytes = encoded(&node);
        assert!(HierNode::decode_state(&[], config).is_none(), "empty");
        assert!(
            HierNode::decode_state(&bytes[..bytes.len() - 1], config).is_none(),
            "truncated"
        );
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(HierNode::decode_state(&wrong_version, config).is_none());
        wrong_version[0] = 0;
        assert!(HierNode::decode_state(&wrong_version, config).is_none());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(HierNode::decode_state(&trailing, config).is_none());
    }

    /// A v2 blob with its epoch bytes and trailer spliced out is exactly a
    /// v1 blob; the decoder accepts it with epoch 0.
    fn as_v1(bytes: &[u8]) -> Vec<u8> {
        let mut v1 = bytes.to_vec();
        v1[0] = 1;
        v1.drain(5..9); // the epoch u32 sits directly after the id u32
        v1.pop(); // v1 has no trailing version byte
        v1
    }

    #[test]
    fn v1_blobs_decode_with_epoch_zero() {
        let config = ProtocolConfig::paper();
        let mut node = HierNode::with_token(NodeId(0), config);
        let _ = node.on_peer_down(NodeId(1), NodeId(0), 7, &[NodeId(0)]);
        assert_eq!(node.epoch(), 7);
        let v1 = as_v1(&encoded(&node));
        let back = HierNode::decode_state(&v1, config).expect("v1 decodes");
        assert_eq!(back.epoch(), 0, "v1 predates epochs");
        assert_eq!(back.id(), node.id());
        assert_eq!(back.has_token(), node.has_token());
    }

    proptest::proptest! {
        /// Epochs survive the round trip, and a blob whose version byte
        /// promises the *other* layout is rejected in both directions —
        /// a cross-version epoch can never be smuggled through the codec.
        #[test]
        fn epoch_round_trips_and_cross_version_is_rejected(
            epoch in 0u32..=u32::MAX,
            id in 0u32..64,
        ) {
            let config = ProtocolConfig::paper();
            let mut node = HierNode::with_token(NodeId(id), config);
            if epoch > 0 {
                let _ = node.on_peer_down(
                    NodeId(id + 1), NodeId(id), epoch, &[NodeId(id)],
                );
            }
            let v2 = encoded(&node);
            let back = HierNode::decode_state(&v2, config).expect("v2 decodes");
            proptest::prop_assert_eq!(back.epoch(), epoch);
            proptest::prop_assert_eq!(&encoded(&back), &v2);

            // v2 body labelled v1: the epoch bytes shift the whole layout.
            let mut mislabelled = v2.clone();
            mislabelled[0] = 1;
            proptest::prop_assert!(
                HierNode::decode_state(&mislabelled, config).is_none()
            );
            // v1 body labelled v2: the decoder expects epoch bytes that are
            // not there.
            let mut v1 = as_v1(&v2);
            v1[0] = 2;
            proptest::prop_assert!(
                HierNode::decode_state(&v1, config).is_none()
            );
        }
    }
}
