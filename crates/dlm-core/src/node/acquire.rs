//! Application-facing entry points: acquire (Rule 2), upgrade (Rule 7) and
//! release (Rule 5.1/5.2).

use super::HierNode;
use crate::effect::{Effect, EffectBuf};
use crate::error::{AcquireError, ReleaseError, UpgradeError};
use crate::message::{Message, QueuedRequest};
use dlm_modes::{compatible, Mode};
use dlm_trace::{NullObserver, Observer, ProtocolEvent};

impl HierNode {
    /// True if an [`Self::on_acquire`] for `mode` would be admitted locally,
    /// with zero messages and zero waiting (the Rule 2 / Rule 3.2 fast
    /// path). This is what a CosConcurrency-style `try_lock` consults: a
    /// *conservative*, purely local test — it never initiates remote
    /// traffic, so a `false` does not prove the lock is unavailable
    /// system-wide, only that acquiring it would have to wait on messages.
    ///
    /// "Zero messages" is literal: when this returns true, the subsequent
    /// acquire produces only a local grant. On the token node that rules out
    /// a non-empty queue — admitting a new holder recomputes the Table 1(d)
    /// freeze set for the queued requests, and a changed set is distributed
    /// to children as `SetFrozen` frames (and a try-lock that jumped ahead
    /// of queued waiters would undermine FIFO anyway).
    pub fn can_admit_locally(&self, mode: Mode) -> bool {
        if mode == Mode::NoLock || self.held != Mode::NoLock || self.pending.is_some() {
            return false;
        }
        if self.frozen.contains(mode) || !compatible(self.owned, mode) {
            return false;
        }
        if self.has_token {
            // Self-grant is message-free only while nothing is queued (an
            // empty queue implies an empty freeze set, so `refresh_frozen`
            // cannot change anything, so no `SetFrozen` traffic).
            self.queue.is_empty() && self.frozen.is_empty()
        } else {
            // A non-token node can only admit what its owned mode covers.
            self.owned.ge(mode)
        }
    }

    /// The local application requests the lock in `mode`.
    ///
    /// Rule 2: a request message is sent iff the owned mode is strictly weaker
    /// than (or incomparable with) the requested mode, or the two are
    /// incompatible; otherwise the node admits itself locally and enters the
    /// critical section with zero messages. A frozen mode (Rule 6) also
    /// forces a request, so the token can order us behind the queued request
    /// that caused the freeze.
    ///
    /// On a local admit, the returned effects contain [`Effect::Granted`]; on
    /// a sent request, the grant arrives later through [`Self::on_message`].
    ///
    /// Convenience wrapper over [`Self::on_acquire_into`] that allocates a
    /// fresh `Vec` per call; hot paths keep a reusable [`EffectBuf`] instead.
    pub fn on_acquire(&mut self, mode: Mode) -> Result<Vec<Effect>, AcquireError> {
        self.on_acquire_observed(mode, 0, &mut NullObserver)
    }

    /// [`Self::on_acquire`] with a request priority (the prior-work
    /// extension; see [`crate::QueuedRequest::priority`]). Priority 0 is the
    /// paper's plain FIFO protocol.
    pub fn on_acquire_with_priority(
        &mut self,
        mode: Mode,
        priority: u8,
    ) -> Result<Vec<Effect>, AcquireError> {
        self.on_acquire_observed(mode, priority, &mut NullObserver)
    }

    /// [`Self::on_acquire_with_priority`] with an [`Observer`] receiving the
    /// structured protocol events of this operation, returning a fresh `Vec`.
    pub fn on_acquire_observed<O: Observer + ?Sized>(
        &mut self,
        mode: Mode,
        priority: u8,
        obs: &mut O,
    ) -> Result<Vec<Effect>, AcquireError> {
        let mut effects = EffectBuf::new();
        self.on_acquire_into(mode, priority, &mut effects, obs)?;
        Ok(effects.take_vec())
    }

    /// The allocation-free acquire entry point: effects are pushed into the
    /// caller-owned `effects` sink. All acquire entry points funnel here.
    /// The observer is a generic parameter so the [`NullObserver`] path
    /// monomorphizes to straight-line code with every event site removed.
    pub fn on_acquire_into<O: Observer + ?Sized>(
        &mut self,
        mode: Mode,
        priority: u8,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) -> Result<(), AcquireError> {
        if mode == Mode::NoLock {
            return Err(AcquireError::NoLockRequested);
        }
        if self.held != Mode::NoLock {
            return Err(AcquireError::AlreadyHeld(self.held));
        }
        if let Some(p) = self.pending {
            return Err(AcquireError::AlreadyPending(p.mode));
        }

        let req = QueuedRequest {
            from: self.id,
            mode,
            upgrade: false,
            priority,
        };

        if self.has_token {
            // The token node answers itself by Rule 3.2 + Rule 6: grant iff
            // compatible with owned and not frozen; otherwise queue locally
            // (Rule 4.2) and freeze per Table 1(d).
            if compatible(self.owned, mode) && !self.frozen.contains(mode) {
                self.held = mode;
                self.owned = self.recompute_owned();
                effects.push(Effect::Granted { mode });
                if obs.enabled() {
                    obs.emit(self.id.0, ProtocolEvent::LocalGrant { mode });
                }
                self.refresh_frozen(effects, obs);
            } else {
                self.pending = Some(req);
                self.enqueue(req, obs);
                self.refresh_frozen(effects, obs);
            }
            return Ok(());
        }

        // Non-token node, Rule 2.
        let local_ok =
            self.owned.ge(mode) && compatible(self.owned, mode) && !self.frozen.contains(mode);
        if local_ok {
            self.held = mode;
            // owned already dominates `mode`; it does not change.
            debug_assert_eq!(self.recompute_owned(), self.owned);
            effects.push(Effect::Granted { mode });
            if obs.enabled() {
                obs.emit(self.id.0, ProtocolEvent::LocalGrant { mode });
            }
        } else {
            self.pending = Some(req);
            let parent = self.parent.expect("non-token node always has a parent");
            effects.push(Effect::send(parent, Message::Request(req)));
            if obs.enabled() {
                obs.emit(
                    self.id.0,
                    ProtocolEvent::RequestSent {
                        to: parent.0,
                        mode,
                        upgrade: false,
                    },
                );
            }
        }
        Ok(())
    }

    /// Rule 7: atomically upgrade a held `U` lock to `W` without releasing.
    ///
    /// The upgraded request travels (or queues) like a `W` request, except
    /// that compatibility checks exclude the requester's own `U`
    /// contribution — upgrades only wait for *other* nodes.
    pub fn on_upgrade(&mut self) -> Result<Vec<Effect>, UpgradeError> {
        self.on_upgrade_observed(&mut NullObserver)
    }

    /// [`Self::on_upgrade`] with an [`Observer`] receiving the structured
    /// protocol events of this operation, returning a fresh `Vec`.
    pub fn on_upgrade_observed<O: Observer + ?Sized>(
        &mut self,
        obs: &mut O,
    ) -> Result<Vec<Effect>, UpgradeError> {
        let mut effects = EffectBuf::new();
        self.on_upgrade_into(&mut effects, obs)?;
        Ok(effects.take_vec())
    }

    /// The allocation-free upgrade entry point (Rule 7); see
    /// [`Self::on_acquire_into`] for the sink/observer contract.
    pub fn on_upgrade_into<O: Observer + ?Sized>(
        &mut self,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) -> Result<(), UpgradeError> {
        if self.held != Mode::Upgrade {
            return Err(UpgradeError::NotHoldingUpgradeLock(self.held));
        }
        if let Some(p) = self.pending {
            return Err(UpgradeError::AlreadyPending(p.mode));
        }
        if obs.enabled() {
            obs.emit(self.id.0, ProtocolEvent::UpgradeStarted);
        }

        let req = QueuedRequest {
            from: self.id,
            mode: Mode::Write,
            upgrade: true,
            priority: 0,
        };

        if self.has_token {
            // Fig. 6: the token node holding U checks everything *except its
            // own U*. If the rest of the tree is quiescent, the upgrade
            // completes immediately; otherwise it queues (freezing weaker
            // modes) and completes when the children release.
            let rest = self.owned_excluding(self.id);
            if rest == Mode::NoLock && !self.frozen.contains(Mode::Write) {
                self.held = Mode::Write;
                self.owned = self.recompute_owned();
                effects.push(Effect::Upgraded);
                if obs.enabled() {
                    obs.emit(self.id.0, ProtocolEvent::Upgraded);
                }
                self.refresh_frozen(effects, obs);
            } else {
                self.pending = Some(req);
                self.enqueue(req, obs);
                self.refresh_frozen(effects, obs);
            }
            return Ok(());
        }

        self.pending = Some(req);
        let parent = self.parent.expect("non-token node always has a parent");
        effects.push(Effect::send(parent, Message::Request(req)));
        if obs.enabled() {
            obs.emit(
                self.id.0,
                ProtocolEvent::RequestSent {
                    to: parent.0,
                    mode: Mode::Write,
                    upgrade: true,
                },
            );
        }
        Ok(())
    }

    /// The local application releases its held lock (Rule 5).
    ///
    /// Rule 5.1: the token node re-examines its queue. Rule 5.2: a non-token
    /// node notifies its parent only if the release weakened its owned mode
    /// (unless release suppression is ablated, in which case it always
    /// notifies — the "eager variant" of §3.2).
    pub fn on_release(&mut self) -> Result<Vec<Effect>, ReleaseError> {
        self.on_release_observed(&mut NullObserver)
    }

    /// [`Self::on_release`] with an [`Observer`] receiving the structured
    /// protocol events of this operation, returning a fresh `Vec`.
    pub fn on_release_observed<O: Observer + ?Sized>(
        &mut self,
        obs: &mut O,
    ) -> Result<Vec<Effect>, ReleaseError> {
        let mut effects = EffectBuf::new();
        self.on_release_into(&mut effects, obs)?;
        Ok(effects.take_vec())
    }

    /// The allocation-free release entry point (Rule 5); see
    /// [`Self::on_acquire_into`] for the sink/observer contract.
    pub fn on_release_into<O: Observer + ?Sized>(
        &mut self,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) -> Result<(), ReleaseError> {
        if self.held == Mode::NoLock {
            return Err(ReleaseError::NotHeld);
        }
        if self.pending.map(|p| p.upgrade).unwrap_or(false) {
            // Rule 7 forbids releasing U mid-upgrade; the upgrade is atomic.
            return Err(ReleaseError::UpgradePending);
        }

        self.held = Mode::NoLock;
        let old_owned = self.owned;
        self.owned = self.recompute_owned();

        if self.has_token {
            self.serve_queue_token(effects, obs);
        } else {
            self.propagate_weakening(old_owned, effects, obs);
        }
        Ok(())
    }

    /// Rule 5.2 (plus the eager-release ablation): tell the parent about an
    /// owned-mode change if warranted.
    pub(crate) fn propagate_weakening<O: Observer + ?Sized>(
        &mut self,
        old_owned: Mode,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        let weakened = self.owned != old_owned && old_owned.ge(self.owned);
        let notify = if self.config.release_suppression {
            weakened
        } else {
            true
        };
        if notify {
            if let Some(parent) = self.parent {
                let ack = self.release_ack(parent);
                effects.push(Effect::send(
                    parent,
                    Message::Release {
                        new_owned: self.owned,
                        ack,
                    },
                ));
                if obs.enabled() {
                    obs.emit(
                        self.id.0,
                        ProtocolEvent::ReleaseSent {
                            to: parent.0,
                            new_owned: self.owned,
                            ack,
                        },
                    );
                }
                if self.owned == Mode::NoLock {
                    // Reporting NoLock removes us from the parent's copyset.
                    // (If the report is dropped as stale, the grant that made
                    // it stale re-registers us on receipt, so the flag heals.)
                    self.registered = false;
                }
            }
        }
    }
}
