//! Crash recovery: epoch-fenced token regeneration and tree repair
//! (DESIGN.md §17).
//!
//! The paper assumes fail-free nodes. This module grafts a coordinated
//! view-change protocol onto the hierarchy: when a failure detector declares
//! a node dead, every survivor runs the same repair (Rule R1), the lock
//! moves to a fresh *epoch* (generation number), and — when the token died
//! with the crashed owner — the designated survivor manufactures a
//! replacement token (Rule R2). Frames are stamped with the sender's epoch
//! at transmit time; [`HierNode::on_frame_into`] fences (drops) any frame
//! whose stamp does not match the receiver's epoch, so a stale token or
//! grant from the dead generation can never resurrect authority (Rule R3).
//!
//! The repair rules, in full:
//!
//! * **R1 (view change, every survivor, idempotent per epoch):** bump the
//!   epoch; purge the dead node from copyset, queue and freeze bookkeeping;
//!   reset the grant/ack counters (the new epoch starts its stale-release
//!   arithmetic from zero on both sides of every link); gossip
//!   [`crate::Message::Recover`] to every other survivor *before emitting
//!   anything else*, so FIFO channels deliver the view change ahead of any
//!   post-recovery frame; then flatten: every non-root survivor re-parents
//!   directly under the new root, clears its (now meaningless) local queue
//!   and copyset, **re-reports** its owned mode to the root, and
//!   **re-issues** its pending request if it has one — the original answer,
//!   if it was in flight, is fenced.
//! * **R2 (regeneration, new root only):** if the root designee does not
//!   hold the token (it died with the owner, or is in flight in the old
//!   epoch and will be fenced), it regenerates one: `has_token = true`,
//!   `parent = None`. Its copyset is seeded **pessimistically**: every
//!   other survivor is recorded at `W`, so nothing can be granted until the
//!   survivors' R1 re-reports replace the pessimistic entries with truth —
//!   this is what makes the repair safe under *any* interleaving of detect
//!   notifications and in-flight traffic, with no barrier.
//! * **R3 (fencing):** a non-`Recover` frame whose epoch stamp differs from
//!   the receiver's epoch is dropped and counted, never delivered.
//!
//! A falsely-suspected node (network partition rather than crash) is simply
//! excluded: it ignores view changes that name *it* as the dead node, and
//! every frame it exchanges with the majority side is fenced by the epoch
//! mismatch. Re-joining a repaired cluster is a rejoin protocol, out of
//! scope here.

use super::HierNode;
use crate::effect::{Effect, EffectBuf};
use crate::flatmap::FlatMap;
use crate::ids::NodeId;
use crate::message::Message;
use dlm_modes::{Mode, ModeSet};
use dlm_trace::{NullObserver, Observer, ProtocolEvent};

impl HierNode {
    /// Rule R1/R2: the failure detector (or a gossiped
    /// [`Message::Recover`]) declared `dead` crashed; repair around it.
    ///
    /// `new_root` is the token's home in epoch `new_epoch`: the surviving
    /// token holder when one exists, otherwise the designated regenerator
    /// (by convention the lowest surviving id — any deterministic choice
    /// works as long as the whole view agrees). `survivors` is the
    /// surviving membership including `new_root` and this node.
    ///
    /// Idempotent: a node already at (or past) `new_epoch` does nothing, so
    /// the detector notification and any number of gossiped `Recover`
    /// frames may arrive in any order. A node that is itself named `dead`
    /// (false suspicion) also does nothing — it is fenced out of the new
    /// epoch instead.
    pub fn on_peer_down_into<O: Observer + ?Sized>(
        &mut self,
        dead: NodeId,
        new_root: NodeId,
        new_epoch: u32,
        survivors: &[NodeId],
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        if new_epoch <= self.epoch || dead == self.id {
            return;
        }
        debug_assert_ne!(new_root, dead);
        debug_assert!(survivors.contains(&self.id));
        self.epoch = new_epoch;
        if obs.enabled() {
            obs.emit(self.id.0, ProtocolEvent::EpochBump { epoch: new_epoch });
        }

        // Purge the dead node and the old generation's link bookkeeping.
        // Counters restart from zero on both sides of every link, so the
        // stale-release arithmetic stays consistent within the new epoch.
        self.update_copyset(dead, Mode::NoLock);
        self.queue.retain(|q| q.from != dead);
        self.grants_sent = FlatMap::new();
        self.grants_received = FlatMap::new();
        self.frozen_sent = FlatMap::new();
        self.frozen = ModeSet::EMPTY;

        // Gossip the view change before any other send: FIFO channels then
        // guarantee no survivor sees a new-epoch frame before it has
        // repaired (without this, e.g. a re-report racing a slow detector
        // would be fenced at the not-yet-bumped root and lost forever).
        for &peer in survivors {
            if peer == self.id || peer == dead {
                continue;
            }
            effects.push(Effect::send(
                peer,
                Message::Recover {
                    dead,
                    new_root,
                    epoch: new_epoch,
                    survivors: survivors.to_vec(),
                },
            ));
            if obs.enabled() {
                obs.emit(
                    self.id.0,
                    ProtocolEvent::RecoverSent {
                        to: peer.0,
                        epoch: new_epoch,
                    },
                );
            }
        }

        if self.id == new_root {
            self.repair_as_root(dead, survivors, effects, obs);
        } else {
            self.repair_as_child(new_root, effects, obs);
        }
    }

    /// [`Self::on_peer_down_into`] returning a fresh `Vec` (test/tool
    /// convenience).
    pub fn on_peer_down(
        &mut self,
        dead: NodeId,
        new_root: NodeId,
        new_epoch: u32,
        survivors: &[NodeId],
    ) -> Vec<Effect> {
        let mut effects = EffectBuf::new();
        self.on_peer_down_into(
            dead,
            new_root,
            new_epoch,
            survivors,
            &mut effects,
            &mut NullObserver,
        );
        effects.take_vec()
    }

    /// Rule R2 at the new root: keep (or regenerate) the token and seed the
    /// copyset pessimistically.
    fn repair_as_root<O: Observer + ?Sized>(
        &mut self,
        dead: NodeId,
        survivors: &[NodeId],
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        if !self.has_token {
            let old_parent = self.parent;
            self.has_token = true;
            self.parent = None;
            self.registered = false;
            if obs.enabled() {
                obs.emit(
                    self.id.0,
                    ProtocolEvent::TokenRegenerated { epoch: self.epoch },
                );
                if old_parent.is_some() {
                    obs.emit(
                        self.id.0,
                        ProtocolEvent::ParentChanged {
                            old: old_parent.map(|p| p.0),
                            new: None,
                        },
                    );
                }
            }
            // A regenerated root was a non-token node a moment ago; its
            // local queue predates its authority and every originator
            // re-issues directly to us (R1), so the entries would only
            // duplicate. Keep our own pending request, drop the rest.
            self.queue.clear();
            if let Some(own) = self.pending {
                self.enqueue(own, obs);
            }
        } else {
            // A surviving holder keeps its authority but not the old
            // epoch's queue entries from other survivors: each of those
            // originators re-issues directly to us (R1), so serving the
            // stale entry as well would double-grant inside the new epoch
            // (old FIFO order is sacrificed to the re-issue race either
            // way). Our own queued pending is the one entry nobody
            // re-issues — keep it.
            self.queue.retain(|q| q.from == self.id);
        }
        // Pessimistic seeding: assume every survivor owns W until its R1
        // re-report replaces the entry with truth. join(W, …) = W blocks
        // every grant, so no interleaving of detects/reports/requests can
        // hand out a mode that an unreported survivor might still hold.
        for &peer in survivors {
            if peer == self.id || peer == dead {
                continue;
            }
            self.copyset.insert(peer, Mode::Write);
        }
        self.owned = self.recompute_owned();
        self.serve_queue_token(effects, obs);
    }

    /// Rule R1 at a non-root survivor: flatten under the new root,
    /// re-report, re-issue.
    fn repair_as_child<O: Observer + ?Sized>(
        &mut self,
        new_root: NodeId,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) {
        if self.has_token {
            // The view designated another root while we hold the token —
            // the coordinator broke the "surviving holder stays root"
            // contract. Defensive: keep our authority, count it. The epoch
            // invariant still holds (our token is the only one in the new
            // epoch unless the designee also regenerates, which the audit
            // will catch).
            self.note_anomaly();
            return;
        }
        let old_parent = self.parent;
        self.parent = Some(new_root);
        if obs.enabled() && old_parent != Some(new_root) {
            obs.emit(
                self.id.0,
                ProtocolEvent::ParentChanged {
                    old: old_parent.map(|p| p.0),
                    new: Some(new_root.0),
                },
            );
        }
        // The flattened tree dissolves this node's subtree bookkeeping:
        // former copyset children re-report straight to the root, and
        // locally queued requests are re-issued by their originators.
        self.copyset = crate::flatmap::CopySet::new();
        self.queue.clear();
        self.owned = self.recompute_owned();

        // Re-report: replaces the root's pessimistic W entry with truth
        // (NoLock removes it). Fresh counters make the release ack 0 on a
        // grants_sent of 0 at the root — never stale.
        let ack = self.release_ack(new_root);
        effects.push(Effect::send(
            new_root,
            Message::Release {
                new_owned: self.owned,
                ack,
            },
        ));
        if obs.enabled() {
            obs.emit(
                self.id.0,
                ProtocolEvent::ReleaseSent {
                    to: new_root.0,
                    new_owned: self.owned,
                    ack,
                },
            );
        }
        self.registered = self.owned != Mode::NoLock;

        // Re-issue the in-flight request, if any: whatever answer the old
        // epoch had in flight for it is fenced on arrival.
        if let Some(req) = self.pending {
            effects.push(Effect::send(new_root, Message::Request(req)));
            if obs.enabled() {
                obs.emit(
                    self.id.0,
                    ProtocolEvent::RequestSent {
                        to: new_root.0,
                        mode: req.mode,
                        upgrade: req.upgrade,
                    },
                );
            }
        }
    }

    /// Rule R3 delivery gate: deliver a frame stamped with the sender's
    /// epoch at transmit time.
    ///
    /// [`Message::Recover`] frames bypass the fence (they carry the view
    /// change itself and are idempotent). Every other frame is delivered
    /// iff its stamp equals this node's epoch; otherwise it is fenced —
    /// dropped with a [`ProtocolEvent::StaleEpochFenced`] event — and
    /// `false` is returned so the runtime can count it.
    pub fn on_frame_into<O: Observer + ?Sized>(
        &mut self,
        from: NodeId,
        frame_epoch: u32,
        message: Message,
        effects: &mut EffectBuf,
        obs: &mut O,
    ) -> bool {
        if !matches!(message, Message::Recover { .. }) && frame_epoch != self.epoch {
            if obs.enabled() {
                obs.emit(
                    self.id.0,
                    ProtocolEvent::StaleEpochFenced {
                        from: from.0,
                        epoch: frame_epoch,
                    },
                );
            }
            return false;
        }
        self.on_message_into(from, message, effects, obs);
        true
    }

    /// [`Self::on_frame_into`] returning the effects as a fresh `Vec`;
    /// `None` means the frame was fenced.
    pub fn on_frame(
        &mut self,
        from: NodeId,
        frame_epoch: u32,
        message: Message,
    ) -> Option<Vec<Effect>> {
        let mut effects = EffectBuf::new();
        let delivered =
            self.on_frame_into(from, frame_epoch, message, &mut effects, &mut NullObserver);
        delivered.then(|| effects.take_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::invariants::{audit, InFlight};

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::paper()
    }

    /// Deliver every Send effect immediately (synchronous network), fencing
    /// by epoch, until quiescence. Returns the number of fenced frames.
    fn settle(nodes: &mut [HierNode], mut pending: Vec<(NodeId, NodeId, u32, Message)>) -> usize {
        let mut fenced = 0;
        while let Some((from, to, epoch, msg)) = pending.pop() {
            let Some(node) = nodes.iter_mut().find(|n| n.id() == to) else {
                continue; // destination crashed
            };
            match node.on_frame(from, epoch, msg) {
                None => fenced += 1,
                Some(effects) => {
                    let sender_epoch = node.epoch();
                    for e in effects {
                        if let Effect::Send { to: next, message } = e {
                            pending.push((to, next, sender_epoch, message));
                        }
                    }
                }
            }
        }
        fenced
    }

    fn sends(
        effects: Vec<Effect>,
        from: NodeId,
        epoch: u32,
    ) -> Vec<(NodeId, NodeId, u32, Message)> {
        effects
            .into_iter()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((from, to, epoch, message)),
                _ => None,
            })
            .collect()
    }

    /// Crash of the token holder: the designated survivor regenerates the
    /// token in a new epoch, survivors re-report, and the system passes a
    /// quiescent audit with exactly one token.
    #[test]
    fn token_holder_crash_regenerates_in_new_epoch() {
        let mut nodes = vec![
            HierNode::with_token(NodeId(0), cfg()),
            HierNode::new(NodeId(1), NodeId(0), cfg()),
            HierNode::new(NodeId(2), NodeId(0), cfg()),
        ];
        // Node 1 holds R (granted by the token), node 2 has a W pending.
        let req = nodes[1].on_acquire(Mode::Read).unwrap();
        let mut flight = sends(req, NodeId(1), 0);
        assert_eq!(settle(&mut nodes, std::mem::take(&mut flight)), 0);
        assert_eq!(nodes[1].held(), Mode::Read);
        let req = nodes[2].on_acquire(Mode::Write).unwrap();
        let w_request = sends(req, NodeId(2), 0);
        // Node 0 (token) crashes before the W request is delivered.
        nodes.remove(0);
        let survivors = [NodeId(1), NodeId(2)];
        let mut pending = w_request; // stale request toward the dead node
        for n in nodes.iter_mut() {
            let effects = n.on_peer_down(NodeId(0), NodeId(1), 1, &survivors);
            let from = n.id();
            let epoch = n.epoch();
            pending.extend(sends(effects, from, epoch));
        }
        let _ = settle(&mut nodes, pending);

        assert!(nodes[0].has_token(), "lowest survivor regenerated");
        assert_eq!(nodes[0].epoch(), 1);
        assert_eq!(nodes[1].epoch(), 1);
        assert_eq!(nodes[1].held(), Mode::NoLock, "W still pending behind R");
        assert_eq!(nodes[1].pending(), Some(Mode::Write));
        // Release the R; the re-issued W must now be served.
        let rel = nodes[0].on_release().unwrap();
        let pending = sends(rel, NodeId(1), 1);
        let _ = settle(&mut nodes, pending);
        assert_eq!(nodes[1].held(), Mode::Write);
        let rel = nodes[1].on_release().unwrap();
        let pending = sends(rel, NodeId(2), 1);
        let _ = settle(&mut nodes, pending);
        assert_eq!(audit(&nodes, &[], true), vec![]);
    }

    /// The stale token frame of a crashed owner, delivered after
    /// regeneration, is fenced: exactly one token remains in the new epoch.
    #[test]
    fn stale_token_frame_is_fenced_after_regeneration() {
        let mut nodes = vec![
            HierNode::with_token(NodeId(0), cfg()),
            HierNode::new(NodeId(1), NodeId(0), cfg()),
            HierNode::new(NodeId(2), NodeId(0), cfg()),
        ];
        // Node 1 requests W; the token answers with a transfer…
        let req = nodes[1].on_acquire(Mode::Write).unwrap();
        let [(_, _, _, request)] = &sends(req, NodeId(1), 0)[..] else {
            panic!("expected one request send");
        };
        let effects = nodes[0].on_message(NodeId(1), request.clone());
        let token_frame = effects
            .into_iter()
            .find_map(|e| match e {
                Effect::Send {
                    to: NodeId(1),
                    message,
                } => Some(message),
                _ => None,
            })
            .expect("token transfer");
        assert!(matches!(token_frame, Message::Token { .. }));
        // …but crashes before the frame is delivered. The view change runs;
        // node 1 (lowest survivor) regenerates.
        nodes.remove(0);
        let survivors = [NodeId(1), NodeId(2)];
        let mut pending = Vec::new();
        for n in nodes.iter_mut() {
            let effects = n.on_peer_down(NodeId(0), NodeId(1), 1, &survivors);
            let from = n.id();
            let epoch = n.epoch();
            pending.extend(sends(effects, from, epoch));
        }
        let _ = settle(&mut nodes, pending);
        assert!(nodes[0].has_token());
        assert_eq!(nodes[0].epoch(), 1);

        // The dead owner's token frame finally arrives, stamped epoch 0.
        assert!(
            nodes[0].on_frame(NodeId(0), 0, token_frame).is_none(),
            "stale token must be fenced"
        );
        let token_count = nodes.iter().filter(|n| n.has_token()).count();
        assert_eq!(token_count, 1, "exactly one token in the new epoch");
        // The re-issued W was self-served by the regenerated root once node
        // 2's re-report cleared the pessimistic entry.
        assert_eq!(nodes[0].held(), Mode::Write);
        let rel = nodes[0].on_release().unwrap();
        let pending = sends(rel, NodeId(1), 1);
        let _ = settle(&mut nodes, pending);
        assert_eq!(audit(&nodes, &[], true), vec![]);
    }

    /// A crash of a non-owner: the surviving holder keeps the token, bumps
    /// the epoch, and held modes survive untouched.
    #[test]
    fn non_owner_crash_keeps_surviving_token() {
        let mut nodes = vec![
            HierNode::with_token(NodeId(0), cfg()),
            HierNode::new(NodeId(1), NodeId(0), cfg()),
            HierNode::new(NodeId(2), NodeId(0), cfg()),
        ];
        let req = nodes[1].on_acquire(Mode::Read).unwrap();
        let pending = sends(req, NodeId(1), 0);
        let _ = settle(&mut nodes, pending);
        assert_eq!(nodes[1].held(), Mode::Read);

        // Node 2 crashes. The surviving holder (node 0) stays root.
        nodes.remove(2);
        let survivors = [NodeId(0), NodeId(1)];
        let mut pending = Vec::new();
        for n in nodes.iter_mut() {
            let effects = n.on_peer_down(NodeId(2), NodeId(0), 1, &survivors);
            let from = n.id();
            let epoch = n.epoch();
            pending.extend(sends(effects, from, epoch));
        }
        let _ = settle(&mut nodes, pending);
        assert!(nodes[0].has_token());
        assert_eq!(nodes[1].held(), Mode::Read, "held mode survives recovery");
        assert_eq!(
            nodes[0].copyset().get(&NodeId(1)),
            Some(&Mode::Read),
            "re-report replaced the pessimistic entry"
        );
        let rel = nodes[1].on_release().unwrap();
        let pending = sends(rel, NodeId(1), 1);
        let _ = settle(&mut nodes, pending);
        assert_eq!(audit(&nodes, &[], true), vec![]);
    }

    /// Repair is idempotent: duplicate view changes (detector + gossip) for
    /// the same epoch do nothing, and a node named dead ignores the view.
    #[test]
    fn repair_is_idempotent_and_false_suspicion_is_ignored() {
        let mut node = HierNode::new(NodeId(1), NodeId(0), cfg());
        let survivors = [NodeId(1), NodeId(2)];
        let first = node.on_peer_down(NodeId(0), NodeId(1), 1, &survivors);
        assert!(node.has_token());
        assert!(!first.is_empty());
        let again = node.on_peer_down(NodeId(0), NodeId(1), 1, &survivors);
        assert!(again.is_empty(), "same-epoch repair is a no-op");

        let mut falsely_dead = HierNode::new(NodeId(2), NodeId(0), cfg());
        let effects = falsely_dead.on_peer_down(NodeId(2), NodeId(1), 1, &[NodeId(1)]);
        assert!(effects.is_empty());
        assert_eq!(falsely_dead.epoch(), 0, "a node ignores its own obituary");
    }

    /// Pessimistic seeding blocks grants until every survivor reports.
    #[test]
    fn regenerated_root_grants_nothing_until_reports_arrive() {
        let mut root = HierNode::new(NodeId(1), NodeId(0), cfg());
        let _ = root.on_acquire(Mode::Read).unwrap(); // pending R
        let survivors = [NodeId(1), NodeId(2), NodeId(3)];
        let effects = root.on_peer_down(NodeId(0), NodeId(1), 1, &survivors);
        assert!(root.has_token());
        assert_eq!(root.owned(), Mode::Write, "pessimistic copyset");
        assert!(
            !effects.iter().any(|e| matches!(e, Effect::Granted { .. })),
            "own pending R must wait for the survivors' re-reports"
        );
        // First report (node 2, holds nothing) — still blocked by node 3.
        let eff = node_report(&mut root, NodeId(2), Mode::NoLock);
        assert!(!eff.iter().any(|e| matches!(e, Effect::Granted { .. })));
        // Final report (node 3, holds R): R is compatible, self-grant fires.
        let eff = node_report(&mut root, NodeId(3), Mode::Read);
        assert!(eff
            .iter()
            .any(|e| matches!(e, Effect::Granted { mode: Mode::Read })));
    }

    fn node_report(root: &mut HierNode, from: NodeId, owned: Mode) -> Vec<Effect> {
        root.on_frame(
            from,
            root.epoch(),
            Message::Release {
                new_owned: owned,
                ack: 0,
            },
        )
        .expect("report delivered")
    }

    /// The audit groups tokens by epoch: a fenced-off stale token plus the
    /// regenerated one never count as two.
    #[test]
    fn audit_counts_tokens_per_epoch() {
        let mut survivor = HierNode::new(NodeId(1), NodeId(0), cfg());
        let _ = survivor.on_peer_down(NodeId(0), NodeId(1), 1, &[NodeId(1)]);
        assert!(survivor.has_token());
        // A stale epoch-0 token still in flight from the dead owner.
        let stale = InFlight {
            from: NodeId(0),
            to: NodeId(1),
            epoch: 0,
            message: Message::Token {
                mode: Mode::Write,
                granter_owned: Mode::NoLock,
                queue: Default::default(),
                frozen: Default::default(),
            },
        };
        let nodes = [survivor];
        assert_eq!(
            audit(&nodes, std::slice::from_ref(&stale), false),
            vec![],
            "one token per epoch: stale flight is not double-counted"
        );
        // But a *same-epoch* flying token alongside the resident one is.
        let mut dup = stale;
        dup.epoch = 1;
        let errors = audit(&nodes, std::slice::from_ref(&dup), false);
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, crate::AuditError::TokenEpochCount { epoch: 1, count: 2 })),
            "{errors:?}"
        );
    }
}
