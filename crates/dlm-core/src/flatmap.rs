//! Sorted flat maps keyed by [`NodeId`] for the per-node bookkeeping tables.
//!
//! Copysets and grant/freeze bookkeeping are maps from a handful of peers to
//! small `Copy` values. `BTreeMap` pays a heap node allocation the moment a
//! map goes non-empty — which the shared-mode churn path does every round as
//! the copyset flips between empty and one child. A [`FlatMap`] keeps up to
//! `N` entries inline in the node struct, sorted by key, and only touches the
//! heap if the map outgrows the inline capacity (and even then the spill
//! vector's capacity is retained when the map empties, so steady-state
//! transitions stay allocation-free).
//!
//! Iteration order is ascending by `NodeId`, identical to the `BTreeMap`s
//! this replaces — the structural fingerprints that serve as the
//! bit-exactness oracle depend on that order.

use crate::ids::NodeId;
use core::fmt;

/// Inline capacity used for the protocol's per-node maps. Copysets hold a
/// node's *children in the grant tree*, which the paper's O(log n) argument
/// keeps small; four inline slots cover every workload in this repo.
pub const MAP_INLINE: usize = 4;

/// A node's copyset: child → strongest mode granted to that child's subtree.
pub type CopySet = FlatMap<dlm_modes::Mode, MAP_INLINE>;

/// A sorted array-backed map from [`NodeId`] to a small `Copy` value.
///
/// Entries live either entirely inline (`len` of `inline` occupied, sorted)
/// or entirely in `spill` (sorted); the map moves to the spill vector when an
/// insert would exceed `N` and re-arms inline storage when it empties.
#[derive(Clone)]
pub struct FlatMap<V: Copy + Default, const N: usize> {
    /// Occupied prefix length of `inline`; unused when spilled.
    len: usize,
    inline: [(NodeId, V); N],
    /// True while entries live in `spill` instead of `inline`.
    spilled: bool,
    spill: Vec<(NodeId, V)>,
}

impl<V: Copy + Default, const N: usize> FlatMap<V, N> {
    /// Create an empty map. Allocation-free.
    pub fn new() -> Self {
        FlatMap {
            len: 0,
            inline: [(NodeId(0), V::default()); N],
            spilled: false,
            spill: Vec::new(),
        }
    }

    /// The entries as a sorted slice.
    #[inline]
    fn entries(&self) -> &[(NodeId, V)] {
        if self.spilled {
            &self.spill
        } else {
            &self.inline[..self.len]
        }
    }

    /// Binary-search for `key`: `Ok(pos)` if present, `Err(insert_pos)` if not.
    #[inline]
    fn position(&self, key: NodeId) -> Result<usize, usize> {
        self.entries().binary_search_by(|&(k, _)| k.cmp(&key))
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        if self.spilled {
            self.spill.len()
        } else {
            self.len
        }
    }

    /// True if the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up the value for `key`.
    #[inline]
    pub fn get(&self, key: &NodeId) -> Option<&V> {
        match self.position(*key) {
            Ok(i) => Some(&self.entries()[i].1),
            Err(_) => None,
        }
    }

    /// True if `key` has an entry.
    #[inline]
    pub fn contains_key(&self, key: &NodeId) -> bool {
        self.position(*key).is_ok()
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, key: NodeId, value: V) -> Option<V> {
        match self.position(key) {
            Ok(i) => {
                let slot = if self.spilled {
                    &mut self.spill[i].1
                } else {
                    &mut self.inline[i].1
                };
                Some(core::mem::replace(slot, value))
            }
            Err(i) => {
                if self.spilled {
                    self.spill.insert(i, (key, value));
                } else if self.len < N {
                    self.inline.copy_within(i..self.len, i + 1);
                    self.inline[i] = (key, value);
                    self.len += 1;
                } else {
                    // Outgrew the inline capacity: move everything to the
                    // spill vector (which keeps its capacity from any prior
                    // spill episode).
                    self.spill.extend_from_slice(&self.inline);
                    self.spill.insert(i, (key, value));
                    self.spilled = true;
                    self.len = 0;
                }
                None
            }
        }
    }

    /// Remove `key`; returns its value if present.
    pub fn remove(&mut self, key: &NodeId) -> Option<V> {
        match self.position(*key) {
            Ok(i) => {
                let value = if self.spilled {
                    let v = self.spill.remove(i).1;
                    if self.spill.is_empty() {
                        // Re-arm inline storage; the spill Vec keeps its
                        // capacity for the next overflow episode.
                        self.spilled = false;
                    }
                    v
                } else {
                    let v = self.inline[i].1;
                    self.inline.copy_within(i + 1..self.len, i);
                    self.len -= 1;
                    v
                };
                Some(value)
            }
            Err(_) => None,
        }
    }

    /// The `i`-th entry in ascending key order (panics if out of range).
    ///
    /// Lets callers walk the map by index while mutating *other* fields of
    /// the owning struct — the pattern the freeze fan-out loops use instead
    /// of collecting the children into a temporary `Vec`.
    #[inline]
    pub fn get_index(&self, i: usize) -> (NodeId, V) {
        self.entries()[i]
    }

    /// Iterate entries in ascending key order, by value.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, V)> + '_ {
        self.entries().iter().copied()
    }
}

impl<V: Copy + Default, const N: usize> Default for FlatMap<V, N> {
    fn default() -> Self {
        FlatMap::new()
    }
}

impl<V: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for FlatMap<V, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries().iter().map(|&(k, v)| (k, v)))
            .finish()
    }
}

impl<V: Copy + Default + PartialEq, const N: usize> PartialEq for FlatMap<V, N> {
    fn eq(&self, other: &Self) -> bool {
        self.entries() == other.entries()
    }
}

impl<V: Copy + Default + Eq, const N: usize> Eq for FlatMap<V, N> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_inline() {
        let mut m: FlatMap<u64, 4> = FlatMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(NodeId(3), 30), None);
        assert_eq!(m.insert(NodeId(1), 10), None);
        assert_eq!(m.insert(NodeId(2), 20), None);
        assert_eq!(m.insert(NodeId(2), 21), Some(20));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&NodeId(2)), Some(&21));
        assert!(m.contains_key(&NodeId(1)));
        assert!(!m.contains_key(&NodeId(9)));
        let keys: Vec<u32> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![1, 2, 3], "ascending key order");
        assert_eq!(m.remove(&NodeId(1)), Some(10));
        assert_eq!(m.remove(&NodeId(1)), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn spills_past_inline_capacity_and_rearms_when_empty() {
        let mut m: FlatMap<u64, 2> = FlatMap::new();
        for k in [5u32, 1, 3, 4, 2] {
            m.insert(NodeId(k), u64::from(k) * 10);
        }
        assert_eq!(m.len(), 5);
        let keys: Vec<u32> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        for k in 1..=5u32 {
            assert_eq!(m.remove(&NodeId(k)), Some(u64::from(k) * 10));
        }
        assert!(m.is_empty());
        // After emptying, inline storage is active again.
        m.insert(NodeId(7), 70);
        assert!(!m.spilled);
        assert_eq!(m.get(&NodeId(7)), Some(&70));
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        // Deterministic LCG so the test needs no external entropy.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut flat: FlatMap<u64, 4> = FlatMap::new();
        let mut model: BTreeMap<NodeId, u64> = BTreeMap::new();
        for _ in 0..4000 {
            let key = NodeId(next() % 12);
            match next() % 3 {
                0 | 1 => {
                    let v = u64::from(next());
                    assert_eq!(flat.insert(key, v), model.insert(key, v));
                }
                _ => assert_eq!(flat.remove(&key), model.remove(&key)),
            }
            assert_eq!(flat.len(), model.len());
            let a: Vec<(NodeId, u64)> = flat.iter().collect();
            let b: Vec<(NodeId, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(a, b, "iteration order/content diverged from BTreeMap");
            for (i, &entry) in a.iter().enumerate() {
                assert_eq!(flat.get_index(i), entry);
            }
        }
    }

    #[test]
    fn debug_formats_like_a_map() {
        let mut m: FlatMap<u64, 4> = FlatMap::new();
        m.insert(NodeId(2), 5);
        assert_eq!(format!("{m:?}"), "{NodeId(2): 5}");
    }
}
