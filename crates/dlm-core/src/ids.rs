//! Node identity.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a participating node (a cluster machine / server process).
///
/// Dense small integers so runtimes can index nodes by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of one lock object when several are multiplexed over one
/// transport (each lock runs an independent instance of the protocol).
///
/// Convention used throughout this workspace for hierarchical data: id 0 is
/// the coarsest granularity (e.g. a whole table) and ids `1..=E` are the
/// finer-granularity objects underneath it (e.g. table entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LockId(pub u32);

impl LockId {
    /// The coarsest-granularity lock (the table, in the paper's workload).
    pub const TABLE: LockId = LockId(0);

    /// The lock protecting fine-granularity object `i` (0-based).
    pub fn entry(i: u32) -> LockId {
        LockId(i + 1)
    }

    /// Dense index for vectors of per-lock state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == LockId::TABLE {
            write!(f, "table")
        } else {
            write!(f, "entry{}", self.0 - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }
}
