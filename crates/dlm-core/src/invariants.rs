//! Global safety audits over a snapshot of every node plus in-flight
//! messages.
//!
//! The paper's safety argument (§3, closing paragraph) rests on a
//! monotonicity lemma — *if `a >= b` then anything compatible with `a` is
//! compatible with `b`* (pinned by `strength_refines_compatibility_inclusion`
//! in `dlm-modes`) — which makes the local test "compatible with my owned
//! mode" sufficient for global mutual exclusion. These audits check the
//! global statements directly, so the simulator and the property tests can
//! verify them after every single event.

use crate::ids::NodeId;
use crate::message::Message;
use crate::node::HierNode;
use dlm_modes::{compatible, Mode, ModeSet};
use std::collections::{BTreeMap, HashSet};

/// A message in flight between two nodes, for audit purposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlight {
    /// Sender (transport hop).
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// The sender's epoch when the frame was emitted (0 before any crash).
    /// The receiver fences mismatches (DESIGN.md §17 Rule R3), so the audit
    /// counts tokens per epoch rather than globally.
    pub epoch: u32,
    /// Payload.
    pub message: Message,
}

/// A violated invariant found by [`audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// Two nodes hold incompatible modes at the same instant — mutual
    /// exclusion is broken.
    IncompatibleHolders {
        /// First holder and its mode.
        a: (NodeId, Mode),
        /// Second holder and its mode.
        b: (NodeId, Mode),
    },
    /// The number of tokens (node-resident plus in-flight) is not one.
    TokenCount(usize),
    /// More than one token exists *within a single epoch* — regeneration
    /// raced a live token of the same generation, which fencing cannot
    /// neutralise. (Across epochs, a stale token alongside a regenerated one
    /// is legal: the stale one is fenced on arrival.)
    TokenEpochCount {
        /// The generation with the surplus.
        epoch: u32,
        /// Tokens counted in that generation (resident plus in-flight).
        count: usize,
    },
    /// A token-holding node has a parent, or a tokenless node has none.
    ParentTokenMismatch(NodeId),
    /// A node's cached owned mode disagrees with `join(held, copyset)`.
    OwnedCacheStale(NodeId),
    /// Parent links contain a cycle (checked at quiescence).
    ParentCycle(NodeId),
    /// At quiescence: a node's parent does not cover the node's owned mode in
    /// its copyset (`copyset[child] >= child.owned` must hold — it is what
    /// makes local grant decisions globally safe).
    CopysetUnderestimates {
        /// The parent whose record is too weak.
        parent: NodeId,
        /// The child whose owned mode is under-recorded.
        child: NodeId,
    },
    /// At quiescence: a request is still pending — liveness failure.
    StuckRequest(NodeId, Mode),
    /// A defensive code path fired (`HierNode::anomalies` non-zero).
    Anomaly(NodeId, u64),
    /// The token node granted a request past an earlier incompatible queued
    /// request of equal-or-higher priority (Rule 6's FIFO guarantee broken).
    /// Found by [`fifo_overtakes`], which the model checker runs after every
    /// transition.
    FifoOvertake {
        /// The granting (token) node.
        node: NodeId,
        /// The request that was granted.
        granted: (NodeId, Mode),
        /// The earlier queued request it overtook.
        bypassed: (NodeId, Mode),
    },
    /// A node is still frozen in a state from which no thaw is reachable
    /// (checked by the model checker at terminal states: every path ends in
    /// a terminal, so thaw-free terminals are exactly the states violating
    /// freeze convergence). Found by [`frozen_residue`].
    FrozenResidue {
        /// The still-frozen node.
        node: NodeId,
        /// The modes left frozen.
        modes: ModeSet,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::IncompatibleHolders { a, b } => write!(
                f,
                "mutual exclusion violated: {} holds {} while {} holds {}",
                a.0, a.1, b.0, b.1
            ),
            AuditError::TokenCount(n) => write!(f, "{n} tokens in the system (expected 1)"),
            AuditError::TokenEpochCount { epoch, count } => {
                write!(f, "{count} tokens in epoch {epoch} (expected at most 1)")
            }
            AuditError::ParentTokenMismatch(n) => {
                write!(f, "{n}: parent/token flag mismatch")
            }
            AuditError::OwnedCacheStale(n) => write!(f, "{n}: owned cache != join(held, copyset)"),
            AuditError::ParentCycle(n) => write!(f, "parent cycle through {n}"),
            AuditError::CopysetUnderestimates { parent, child } => write!(
                f,
                "{parent} records a copyset mode weaker than {child}'s owned mode"
            ),
            AuditError::StuckRequest(n, m) => {
                write!(f, "{n}: request for {m} never granted (quiescent system)")
            }
            AuditError::Anomaly(n, c) => write!(f, "{n}: {c} defensive anomalies"),
            AuditError::FifoOvertake {
                node,
                granted,
                bypassed,
            } => write!(
                f,
                "{node} granted {} to {} past earlier incompatible queued {} from {}",
                granted.1, granted.0, bypassed.1, bypassed.0
            ),
            AuditError::FrozenResidue { node, modes } => {
                write!(f, "{node} left frozen ({modes:?}) with no thaw reachable")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Audit a system snapshot.
///
/// Safety checks (mutual exclusion, single token, cache coherence) apply at
/// *every* instant. Structural and liveness checks (tree shape, copyset
/// coverage, no stuck requests) only hold at **quiescence** — no in-flight
/// messages and no pending requests expected — and are enabled by
/// `quiescent`.
pub fn audit(nodes: &[HierNode], in_flight: &[InFlight], quiescent: bool) -> Vec<AuditError> {
    let mut errors = Vec::new();

    // Mutual exclusion: all concurrently held modes pairwise compatible.
    let holders: Vec<(NodeId, Mode)> = nodes
        .iter()
        .filter(|n| n.held() != Mode::NoLock)
        .map(|n| (n.id(), n.held()))
        .collect();
    for (i, &a) in holders.iter().enumerate() {
        for &b in &holders[i + 1..] {
            if !compatible(a.1, b.1) {
                errors.push(AuditError::IncompatibleHolders { a, b });
            }
        }
    }

    // Exactly one token — counted *per epoch*, since crash recovery may
    // legally leave a fenced old-generation token in flight alongside the
    // regenerated one (DESIGN.md §17). Within any single epoch a second
    // token is always an error; the current generation (max node epoch)
    // must converge to exactly one, which mid-repair interleavings can
    // only violate transiently, so that half is gated on quiescence.
    let mut per_epoch: BTreeMap<u32, usize> = BTreeMap::new();
    for n in nodes.iter().filter(|n| n.has_token()) {
        *per_epoch.entry(n.epoch()).or_default() += 1;
    }
    for m in in_flight {
        if matches!(m.message, Message::Token { .. }) {
            *per_epoch.entry(m.epoch).or_default() += 1;
        }
    }
    for (&epoch, &count) in &per_epoch {
        if count > 1 {
            errors.push(AuditError::TokenEpochCount { epoch, count });
        }
    }
    let max_epoch = nodes.iter().map(|n| n.epoch()).max().unwrap_or(0);
    let single_epoch =
        nodes.iter().all(|n| n.epoch() == max_epoch) && per_epoch.keys().all(|&e| e == max_epoch);
    let current = per_epoch.get(&max_epoch).copied().unwrap_or(0);
    if (single_epoch || quiescent) && current != 1 {
        errors.push(AuditError::TokenCount(current));
    }

    for n in nodes {
        // Parent iff not token. Exception: a node that sent the token away
        // has a parent while the token flies — that still satisfies the rule
        // (it is not a token node). A node AWAITING the token keeps its old
        // parent. So the invariant is exact at all times.
        if n.has_token() == n.parent().is_some() {
            errors.push(AuditError::ParentTokenMismatch(n.id()));
        }
        if n.owned() != n.recompute_owned() {
            errors.push(AuditError::OwnedCacheStale(n.id()));
        }
        if n.anomalies() > 0 {
            errors.push(AuditError::Anomaly(n.id(), n.anomalies()));
        }
    }

    if quiescent {
        audit_quiescent(nodes, &mut errors);
    }
    errors
}

fn audit_quiescent(nodes: &[HierNode], errors: &mut Vec<AuditError>) {
    // Tree acyclicity: follow parent links from every node; must reach the
    // token node within n hops.
    let n = nodes.len();
    for start in nodes {
        let mut cur = start;
        let mut hops = 0;
        while let Some(p) = cur.parent() {
            hops += 1;
            if hops > n {
                errors.push(AuditError::ParentCycle(start.id()));
                break;
            }
            match nodes.iter().find(|x| x.id() == p) {
                Some(next) => cur = next,
                None => break, // partial snapshot; cannot follow further
            }
        }
    }

    // Copyset coverage: parent's record dominates child's owned mode.
    let ids: HashSet<NodeId> = nodes.iter().map(|n| n.id()).collect();
    for child in nodes {
        if child.owned() == Mode::NoLock || child.has_token() {
            continue;
        }
        let Some(pid) = child.parent() else { continue };
        if !ids.contains(&pid) {
            continue;
        }
        let parent = nodes.iter().find(|x| x.id() == pid).expect("checked");
        let recorded = parent
            .copyset()
            .get(&child.id())
            .copied()
            .unwrap_or(Mode::NoLock);
        if !recorded.ge(child.owned()) {
            errors.push(AuditError::CopysetUnderestimates {
                parent: pid,
                child: child.id(),
            });
        }
    }

    // Liveness: nothing pending, nothing queued.
    for node in nodes {
        if let Some(m) = node.pending() {
            errors.push(AuditError::StuckRequest(node.id(), m));
        }
    }
}

/// One grant decision taken by a node during a single transition, for
/// [`fifo_overtakes`]. The model checker builds these from the transition's
/// [`crate::Effect`]s (copy grants, token transfers, self-grants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantInfo {
    /// The node whose request was granted.
    pub to: NodeId,
    /// The granted mode.
    pub mode: Mode,
    /// True for Rule 7 upgrades, which are exempt from the FIFO shield (they
    /// must overtake: the upgrader already holds `U` and blocks the queue).
    pub upgrade: bool,
    /// The granted request's priority (FIFO applies within a level).
    pub priority: u8,
}

/// Check per-lock FIFO grant order at the token node for one transition.
///
/// `node` is the granting node's state **before** the transition and
/// `grants` the grant decisions it took during it. A grant overtakes — and
/// Rule 6 freezing exists precisely to prevent this — when an earlier
/// incompatible queued request of equal-or-higher priority was still waiting
/// in front of it. The shield only covers the token node's queue (the
/// distributed FIFO of §3.2 lives there: non-token queues drain through it),
/// and only applies with freezing enabled (the `Freezing` ablation
/// deliberately gives up this guarantee, §3.3).
pub fn fifo_overtakes(node: &HierNode, grants: &[GrantInfo]) -> Vec<AuditError> {
    let mut errors = Vec::new();
    if !node.has_token() || !node.protocol_config().freezing {
        return errors;
    }
    for g in grants {
        if g.upgrade {
            continue;
        }
        for queued in node.queued() {
            if queued.from == g.to {
                // Reached the grant's own queue entry: everything behind it
                // queued later and cannot have been overtaken.
                break;
            }
            if queued.priority >= g.priority && !compatible(queued.mode, g.mode) {
                errors.push(AuditError::FifoOvertake {
                    node: node.id(),
                    granted: (g.to, g.mode),
                    bypassed: (queued.from, queued.mode),
                });
            }
        }
    }
    errors
}

/// Check freeze convergence over a terminal (successor-free) state.
///
/// Freezing is a *temporary* shield: Rule 6 freezes modes only while an
/// incompatible request waits, and the token node recomputes its frozen
/// set from its queue on every dequeue. In a finite exploration every
/// state has a path to some terminal state, so "the authority thaws once
/// every request is served" holds exactly when no terminal state leaves
/// the *token node* frozen — which is what this audits.
///
/// Non-token nodes are exempt on purpose: after a token transfer a former
/// copyset member may retain a stale, over-large frozen set. That is a
/// documented cost trade-off (it only makes the node forward requests it
/// could have granted; the token serves them), not a convergence failure.
pub fn frozen_residue(nodes: &[HierNode]) -> Vec<AuditError> {
    nodes
        .iter()
        .filter(|n| n.has_token() && !n.frozen().is_empty())
        .map(|n| AuditError::FrozenResidue {
            node: n.id(),
            modes: n.frozen(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;

    fn three_nodes() -> Vec<HierNode> {
        vec![
            HierNode::with_token(NodeId(0), ProtocolConfig::paper()),
            HierNode::new(NodeId(1), NodeId(0), ProtocolConfig::paper()),
            HierNode::new(NodeId(2), NodeId(0), ProtocolConfig::paper()),
        ]
    }

    #[test]
    fn fresh_system_passes_quiescent_audit() {
        let nodes = three_nodes();
        assert!(audit(&nodes, &[], true).is_empty());
    }

    #[test]
    fn incompatible_holders_detected() {
        let mut nodes = three_nodes();
        // Reach held states through the public API to keep caches coherent:
        // n0 (token) takes W locally; hand-craft n1 as a bogus R holder by
        // driving it with a forged grant.
        let eff = nodes[0].on_acquire(Mode::Write).unwrap();
        assert!(eff
            .iter()
            .any(|e| matches!(e, crate::Effect::Granted { .. })));
        let eff = nodes[1].on_acquire(Mode::Read).unwrap();
        assert_eq!(eff.len(), 1); // request sent, not granted
        let _ = nodes[1].on_message(NodeId(0), Message::Grant { mode: Mode::Read });
        let errors = audit(&nodes, &[], false);
        assert!(errors
            .iter()
            .any(|e| matches!(e, AuditError::IncompatibleHolders { .. })));
    }

    #[test]
    fn token_count_detects_in_flight_token() {
        let nodes = three_nodes();
        let flight = InFlight {
            from: NodeId(0),
            to: NodeId(1),
            epoch: 0,
            message: Message::Token {
                mode: Mode::Write,
                granter_owned: Mode::NoLock,
                queue: Default::default(),
                frozen: Default::default(),
            },
        };
        // One resident + one flying = 2 tokens: error.
        let errors = audit(&nodes, std::slice::from_ref(&flight), false);
        assert!(errors
            .iter()
            .any(|e| matches!(e, AuditError::TokenCount(2))));
    }

    #[test]
    fn stuck_request_reported_at_quiescence_only() {
        let mut nodes = three_nodes();
        let _ = nodes[1].on_acquire(Mode::Write).unwrap();
        assert!(audit(&nodes, &[], false)
            .iter()
            .all(|e| !matches!(e, AuditError::StuckRequest(..))));
        assert!(audit(&nodes, &[], true)
            .iter()
            .any(|e| matches!(e, AuditError::StuckRequest(n, Mode::Write) if *n == NodeId(1))));
    }

    #[test]
    fn fifo_overtake_flagged_only_for_real_overtakes() {
        use crate::message::QueuedRequest;
        let mut token = HierNode::with_token(NodeId(0), ProtocolConfig::paper());
        let mut obs = dlm_trace::NullObserver;
        token.enqueue(QueuedRequest::plain(NodeId(1), Mode::Write), &mut obs);
        token.enqueue(QueuedRequest::plain(NodeId(2), Mode::Read), &mut obs);

        // Granting R to n3 past n1's queued W is an overtake…
        let overtake = GrantInfo {
            to: NodeId(3),
            mode: Mode::Read,
            upgrade: false,
            priority: 0,
        };
        let errors = fifo_overtakes(&token, &[overtake]);
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, AuditError::FifoOvertake { .. })),
            "{errors:?}"
        );

        // …but serving n1's own head-of-queue W is not, and neither is an
        // upgrade (exempt) or a compatible mode (IR passes a queued R).
        let serve_head = GrantInfo {
            to: NodeId(1),
            mode: Mode::Write,
            upgrade: false,
            priority: 0,
        };
        let upgrade = GrantInfo {
            to: NodeId(3),
            mode: Mode::Write,
            upgrade: true,
            priority: 0,
        };
        assert!(fifo_overtakes(&token, &[serve_head]).is_empty());
        assert!(fifo_overtakes(&token, &[upgrade]).is_empty());

        // A non-token node's grants are outside the shield.
        let mut child = HierNode::new(NodeId(5), NodeId(0), ProtocolConfig::paper());
        child.enqueue(QueuedRequest::plain(NodeId(1), Mode::Write), &mut obs);
        assert!(fifo_overtakes(&child, &[overtake]).is_empty());
    }

    #[test]
    fn frozen_residue_reports_only_the_token_node() {
        let mut nodes = three_nodes();
        assert!(frozen_residue(&nodes).is_empty());

        // A stale frozen set at a *non-token* node is a documented cost
        // trade-off, not a convergence failure: exempt.
        let mut set = dlm_modes::ModeSet::new();
        set.insert(Mode::Read);
        let _ = nodes[1].on_message(NodeId(0), Message::SetFrozen { modes: set });
        assert!(frozen_residue(&nodes).is_empty());

        // The token node freezes R while an incompatible W waits behind a
        // held R; if that survived to a terminal state it would be residue.
        let _ = nodes[0].on_acquire(Mode::Read).unwrap();
        let _ = nodes[0].on_message(
            NodeId(2),
            Message::Request(crate::message::QueuedRequest::plain(NodeId(2), Mode::Write)),
        );
        assert!(!nodes[0].frozen().is_empty(), "W behind R must freeze");
        let errors = frozen_residue(&nodes);
        assert_eq!(errors.len(), 1);
        assert!(matches!(
            errors[0],
            AuditError::FrozenResidue {
                node: NodeId(0),
                ..
            }
        ));
    }

    #[test]
    fn errors_display() {
        let e = AuditError::IncompatibleHolders {
            a: (NodeId(0), Mode::Write),
            b: (NodeId(1), Mode::Read),
        };
        assert!(e.to_string().contains("mutual exclusion"));
    }
}
