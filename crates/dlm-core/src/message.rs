//! Protocol messages.
//!
//! The paper's operational specification names five message kinds — request,
//! grant, token, release, freeze and "update" — which map onto the variants
//! below (`SetFrozen` is the freeze/update pair: it idempotently replaces the
//! receiver's frozen set, so the same message both freezes and unfreezes).

use crate::ids::NodeId;
use dlm_modes::{Mode, ModeSet};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A request waiting in some node's local queue (§3.2: the union of local
/// queues is logically one distributed FIFO — or, with non-zero priorities,
/// one distributed priority queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedRequest {
    /// The node that originated the request.
    pub from: NodeId,
    /// The requested mode.
    pub mode: Mode,
    /// True if this is a Rule 7 upgrade: the requester already holds `U` and
    /// asks for `W` without releasing. Compatibility checks for an upgrade
    /// exclude the requester's own contribution to the owned mode.
    pub upgrade: bool,
    /// Request priority (higher = more urgent; 0 = the paper's plain FIFO).
    ///
    /// An extension following the authors' prior work on prioritized
    /// token-based mutual exclusion (Mueller, IPPS'98 / RTSS'99, cited as
    /// the foundation in §2): requests queue ahead of strictly
    /// lower-priority entries at the token and are FIFO within a priority
    /// level. Fairness (Rule 6 freezing) then holds *per priority level*;
    /// a starved low-priority request is a policy choice, not a bug.
    pub priority: u8,
}

impl QueuedRequest {
    /// A plain (priority 0, non-upgrade) request — the paper's protocol.
    pub fn plain(from: NodeId, mode: Mode) -> Self {
        QueuedRequest {
            from,
            mode,
            upgrade: false,
            priority: 0,
        }
    }
}

/// A protocol message between two nodes. Senders are identified by the
/// transport (`HierNode::on_message` receives the sender id).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// A lock request travelling up the parent chain (Rules 2–4). Forwarding
    /// preserves `requester`, so the eventual grant is sent directly to the
    /// originator (this is what compresses paths: the requester re-parents
    /// under the granter, however far away it was).
    Request(QueuedRequest),

    /// A copy-grant (Rule 3): the sender owns a sufficient, compatible mode
    /// and admits the requester into its copyset. On receipt, the requester
    /// holds `mode` and re-parents under the sender.
    Grant {
        /// The granted mode (equals the requested mode).
        mode: Mode,
    },

    /// A token transfer (Rule 3.2, `MO < MR`): the requested mode is stronger
    /// than everything the token owns, so authority itself moves. The sender
    /// (old token node) becomes a child of the receiver.
    Token {
        /// The granted mode (equals the requested mode).
        mode: Mode,
        /// The old token node's owned mode at transfer time; the receiver
        /// records the sender in its copyset with this mode (the sender keeps
        /// its own subtree).
        granter_owned: Mode,
        /// The old token node's local queue. Queued requests are token-level
        /// decisions, so they travel with the token (DESIGN.md §3, item 2).
        queue: VecDeque<QueuedRequest>,
        /// Frozen modes protecting the carried queue (Rule 6).
        frozen: ModeSet,
    },

    /// A release notification (Rule 5.2): the sender's owned mode weakened to
    /// `new_owned` (possibly `NoLock`). The receiver updates its copyset.
    Release {
        /// The sender's owned mode after the weakening.
        new_owned: Mode,
        /// Number of grants the sender has *received* from the receiver when
        /// this release was emitted. The receiver compares it against the
        /// grants it has *sent*: a smaller value means a grant is still in
        /// flight to the sender, making this release stale — it reflects a
        /// state that the in-flight grant is about to strengthen — and it is
        /// dropped (the sender's next release resynchronises the entry).
        /// Without this, a release racing a grant on the opposite channel
        /// can erase the granted mode from the granter's copyset and break
        /// mutual exclusion (found by the property tests; DESIGN.md §3).
        ack: u64,
    },

    /// Freeze propagation (Rule 6): idempotently replaces the receiver's
    /// frozen-mode set and is forwarded transitively to copyset children that
    /// could grant a frozen mode. An empty set is the paper's "update"
    /// (unfreeze) message.
    SetFrozen {
        /// The new frozen set (replaces, not merges).
        modes: ModeSet,
    },

    /// Crash-recovery view change (Rule R1, DESIGN.md §17): `dead` has been
    /// declared crashed and the lock's state moves to generation `epoch`,
    /// rooted at `new_root`. Every survivor gossips this to every other
    /// survivor *before* any other new-epoch frame, so FIFO channels
    /// guarantee a receiver has repaired before it sees post-recovery
    /// traffic. Processing is idempotent: a receiver already at (or past)
    /// `epoch` ignores it.
    Recover {
        /// The crashed node being excised from the tree.
        dead: NodeId,
        /// Token home in the new epoch: the surviving token holder if one
        /// exists, otherwise the designated regenerator.
        new_root: NodeId,
        /// The new generation number (strictly greater than any epoch the
        /// lock has used before).
        epoch: u32,
        /// Surviving membership, so a gossip-triggered repair can gossip
        /// onward exactly like a detector-triggered one.
        survivors: Vec<NodeId>,
    },
}

impl QueuedRequest {
    /// This request with its originator mapped through `map` (model-checker
    /// symmetry reduction; see [`crate::HierNode::relabeled`]).
    pub fn relabeled(&self, map: impl Fn(NodeId) -> NodeId) -> QueuedRequest {
        QueuedRequest {
            from: map(self.from),
            ..*self
        }
    }
}

impl Message {
    /// This message with every embedded node identity mapped through `map`
    /// (model-checker symmetry reduction; see
    /// [`crate::HierNode::relabeled`]). Only requests and token transfers
    /// carry node ids; the other variants are returned unchanged.
    pub fn relabeled(&self, map: impl Fn(NodeId) -> NodeId) -> Message {
        match self {
            Message::Request(req) => Message::Request(req.relabeled(map)),
            Message::Token {
                mode,
                granter_owned,
                queue,
                frozen,
            } => Message::Token {
                mode: *mode,
                granter_owned: *granter_owned,
                queue: queue.iter().map(|q| q.relabeled(&map)).collect(),
                frozen: *frozen,
            },
            Message::Recover {
                dead,
                new_root,
                epoch,
                survivors,
            } => Message::Recover {
                dead: map(*dead),
                new_root: map(*new_root),
                epoch: *epoch,
                survivors: survivors.iter().map(|&s| map(s)).collect(),
            },
            other => other.clone(),
        }
    }

    /// Short tag for metrics (message counts per kind).
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Request { .. } => MessageKind::Request,
            Message::Grant { .. } => MessageKind::Grant,
            Message::Token { .. } => MessageKind::Token,
            Message::Release { .. } => MessageKind::Release,
            Message::SetFrozen { .. } => MessageKind::Freeze,
            Message::Recover { .. } => MessageKind::Recover,
        }
    }
}

/// Message kinds, for per-kind accounting in the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// [`Message::Request`]
    Request,
    /// [`Message::Grant`]
    Grant,
    /// [`Message::Token`]
    Token,
    /// [`Message::Release`]
    Release,
    /// [`Message::SetFrozen`]
    Freeze,
    /// [`Message::Recover`]
    Recover,
}

/// All message kinds, for tally tables.
pub const ALL_MESSAGE_KINDS: [MessageKind; 6] = [
    MessageKind::Request,
    MessageKind::Grant,
    MessageKind::Token,
    MessageKind::Release,
    MessageKind::Freeze,
    MessageKind::Recover,
];

impl MessageKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            MessageKind::Request => "request",
            MessageKind::Grant => "grant",
            MessageKind::Token => "token",
            MessageKind::Release => "release",
            MessageKind::Freeze => "freeze",
            MessageKind::Recover => "recover",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_maps_every_variant() {
        let q = QueuedRequest::plain(NodeId(1), Mode::Read);
        assert_eq!(Message::Request(q).kind(), MessageKind::Request);
        assert_eq!(
            Message::Grant { mode: Mode::Read }.kind(),
            MessageKind::Grant
        );
        assert_eq!(
            Message::Token {
                mode: Mode::Write,
                granter_owned: Mode::NoLock,
                queue: VecDeque::new(),
                frozen: ModeSet::EMPTY,
            }
            .kind(),
            MessageKind::Token
        );
        assert_eq!(
            Message::Release {
                new_owned: Mode::NoLock,
                ack: 0,
            }
            .kind(),
            MessageKind::Release
        );
        assert_eq!(
            Message::SetFrozen {
                modes: ModeSet::EMPTY
            }
            .kind(),
            MessageKind::Freeze
        );
        assert_eq!(
            Message::Recover {
                dead: NodeId(2),
                new_root: NodeId(0),
                epoch: 1,
                survivors: vec![NodeId(0), NodeId(1)],
            }
            .kind(),
            MessageKind::Recover
        );
    }

    #[test]
    fn recover_relabels_every_identity() {
        let m = Message::Recover {
            dead: NodeId(2),
            new_root: NodeId(0),
            epoch: 3,
            survivors: vec![NodeId(0), NodeId(1)],
        };
        let swapped = m.relabeled(|n| NodeId(n.0 + 10));
        assert_eq!(
            swapped,
            Message::Recover {
                dead: NodeId(12),
                new_root: NodeId(10),
                epoch: 3,
                survivors: vec![NodeId(10), NodeId(11)],
            }
        );
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = ALL_MESSAGE_KINDS.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ALL_MESSAGE_KINDS.len());
    }
}
