//! Errors for misuse of the per-node lock API.
//!
//! The protocol models one application instance per node per lock (as in the
//! paper's experiments): a node has at most one held mode and at most one
//! pending request. Violations are programming errors surfaced as typed
//! errors rather than protocol messages.

use core::fmt;
use dlm_modes::Mode;

/// Why `HierNode::on_acquire` refused to start a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireError {
    /// The node already holds the lock. Acquiring a second mode on the same
    /// lock from the same node would self-deadlock whenever the modes
    /// conflict; the protocol's answer to read-then-write is the `U` mode
    /// plus `on_upgrade` (Rule 7).
    AlreadyHeld(Mode),
    /// A request is already outstanding; a node has one pending slot.
    AlreadyPending(Mode),
    /// `NoLock` cannot be requested; use `on_release`.
    NoLockRequested,
}

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcquireError::AlreadyHeld(m) => {
                write!(f, "lock already held in mode {m}; release or upgrade first")
            }
            AcquireError::AlreadyPending(m) => {
                write!(f, "a request for mode {m} is already pending")
            }
            AcquireError::NoLockRequested => write!(f, "cannot request the NoLock mode"),
        }
    }
}

impl std::error::Error for AcquireError {}

/// Why `HierNode::on_upgrade` refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradeError {
    /// Rule 7 upgrades are only defined from a held `U` lock.
    NotHoldingUpgradeLock(Mode),
    /// A request is already outstanding.
    AlreadyPending(Mode),
}

impl fmt::Display for UpgradeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpgradeError::NotHoldingUpgradeLock(m) => {
                write!(f, "upgrade requires a held U lock (currently holding {m})")
            }
            UpgradeError::AlreadyPending(m) => {
                write!(f, "a request for mode {m} is already pending")
            }
        }
    }
}

impl std::error::Error for UpgradeError {}

/// Why `HierNode::on_release` refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseError {
    /// Nothing is held.
    NotHeld,
    /// A Rule 7 upgrade is in flight; the `U` lock must not be released until
    /// the upgrade completes (that non-release is what makes upgrades atomic).
    UpgradePending,
}

impl fmt::Display for ReleaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReleaseError::NotHeld => write!(f, "release without a held lock"),
            ReleaseError::UpgradePending => {
                write!(f, "cannot release U while an upgrade to W is pending")
            }
        }
    }
}

impl std::error::Error for ReleaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        assert!(AcquireError::AlreadyHeld(Mode::Read)
            .to_string()
            .contains("already held in mode R"));
        assert!(AcquireError::AlreadyPending(Mode::Write)
            .to_string()
            .contains("pending"));
        assert!(AcquireError::NoLockRequested.to_string().contains("NoLock"));
        assert!(UpgradeError::NotHoldingUpgradeLock(Mode::Read)
            .to_string()
            .contains("held U lock"));
        assert!(UpgradeError::AlreadyPending(Mode::Write)
            .to_string()
            .contains("pending"));
        assert!(ReleaseError::NotHeld.to_string().contains("without"));
    }
}
