//! Property tests for the measurement primitives: histogram bucketing
//! error bounds, quantile monotonicity, and summary/merge algebra.

use dlm_metrics::{Histogram, Summary};
use proptest::prelude::*;

proptest! {
    /// Bucket floors never exceed the recorded value and the relative error
    /// is bounded by the sub-bucket width (25 %).
    #[test]
    fn histogram_bucket_error_bounded(values in proptest::collection::vec(0u64..u64::MAX / 2, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let exact_max = *values.iter().max().unwrap();
        let exact_min = *values.iter().min().unwrap();
        prop_assert_eq!(h.max(), exact_max);
        prop_assert_eq!(h.min(), exact_min);
        // Quantiles live within [min, max] and are monotone.
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        prop_assert!(qs[0] >= exact_min);
        prop_assert!(qs[5] <= exact_max);
    }

    /// The exact mean tracked by the histogram matches a reference fold.
    #[test]
    fn histogram_mean_is_exact(values in proptest::collection::vec(0u64..1_000_000u64, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let expected = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - expected).abs() < 1e-6);
    }

    /// Merging histograms is equivalent to recording everything into one.
    #[test]
    fn histogram_merge_homomorphic(
        a in proptest::collection::vec(0u64..1_000_000u64, 0..100),
        b in proptest::collection::vec(0u64..1_000_000u64, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a { ha.record(v); hall.record(v); }
        for &v in &b { hb.record(v); hall.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.mean(), hall.mean());
        prop_assert_eq!(ha.quantile(0.5), hall.quantile(0.5));
        prop_assert_eq!(ha.max(), hall.max());
    }

    /// Summary statistics match naive reference computations.
    #[test]
    fn summary_matches_reference(values in proptest::collection::vec(-1e6f64..1e6f64, 1..200)) {
        let mut s = Summary::new();
        for &v in &values {
            s.record(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    /// Summary merge is associative with sequential recording.
    #[test]
    fn summary_merge_homomorphic(
        a in proptest::collection::vec(-1e5f64..1e5f64, 0..100),
        b in proptest::collection::vec(-1e5f64..1e5f64, 0..100),
    ) {
        let mut sa = Summary::new();
        let mut sb = Summary::new();
        let mut sall = Summary::new();
        for &v in &a { sa.record(v); sall.record(v); }
        for &v in &b { sb.record(v); sall.record(v); }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), sall.count());
        prop_assert!((sa.mean() - sall.mean()).abs() < 1e-6 * (1.0 + sall.mean().abs()));
        prop_assert!((sa.variance() - sall.variance()).abs() < 1e-3 * (1.0 + sall.variance().abs()));
    }

    /// Quantile accuracy bound for the power-of-two buckets: the reported
    /// quantile never exceeds the exact order statistic, sits within one
    /// sub-bucket of it (25 % relative error), and is therefore always well
    /// inside the coarse 2x bound of plain power-of-two bucketing.
    #[test]
    fn histogram_quantile_within_one_bucket_of_exact(
        // Bounded to the histogram's covered range (2^40); beyond it values
        // saturate into the last bucket and no accuracy bound can hold.
        values in proptest::collection::vec(0u64..(1u64 << 40), 1..300),
        qs in proptest::collection::vec(0.0f64..1.0f64, 1..8),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &qs {
            // Same rank rule as Histogram::quantile: ceil(q*n), at least 1.
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let reported = h.quantile(q);
            prop_assert!(
                reported <= exact,
                "q={q}: reported {reported} above exact order statistic {exact}"
            );
            // Within one sub-bucket: error <= 25 % of the reported floor
            // (+1 absorbs the sub-4 exact cells).
            prop_assert!(
                (exact - reported) as f64 <= 0.25 * reported as f64 + 1.0,
                "q={q}: reported {reported} not within one bucket of exact {exact}"
            );
            // The headline coarse bound: at most 2x relative error.
            prop_assert!(
                exact <= 2 * reported + 1,
                "q={q}: reported {reported} worse than 2x below exact {exact}"
            );
        }
    }

    /// Histogram merge is commutative and associative: any merge order over
    /// three shards yields the same distribution. Equality is checked on the
    /// full compact encoding, which covers every bucket plus the exact
    /// count/total/min/max — far stronger than comparing a few quantiles.
    #[test]
    fn histogram_merge_commutative_associative(
        a in proptest::collection::vec(0u64..10_000_000u64, 0..100),
        b in proptest::collection::vec(0u64..10_000_000u64, 0..100),
        c in proptest::collection::vec(0u64..10_000_000u64, 0..100),
    ) {
        let build = |vs: &[u64]| {
            let mut h = Histogram::new();
            for &v in vs {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        // Commutativity: a + b == b + a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.encode_compact(), ba.encode_compact());

        // Associativity: (a + b) + c == a + (b + c).
        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.encode_compact(), a_bc.encode_compact());
    }

    /// The compact encoding round-trips through decode for arbitrary data.
    #[test]
    fn histogram_compact_encoding_round_trips(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let decoded = Histogram::decode_compact(&h.encode_compact()).unwrap();
        prop_assert_eq!(decoded.encode_compact(), h.encode_compact());
        prop_assert_eq!(decoded.count(), h.count());
        prop_assert_eq!(decoded.mean().to_bits(), h.mean().to_bits());
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(decoded.quantile(q), h.quantile(q));
        }
    }
}
