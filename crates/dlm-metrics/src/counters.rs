//! Small labelled counter sets.

use serde::Serialize;
use std::collections::BTreeMap;

/// A set of named monotonically increasing counters (message kinds, grant
/// kinds, …). `BTreeMap` keeps report output deterministic. Serialize-only:
/// counter names are `&'static str` labels baked into the binary.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CounterSet {
    counters: BTreeMap<&'static str, u64>,
}

impl CounterSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Increment counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read a counter (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum across all counters.
    pub fn total(&self) -> u64 {
        self.counters.values().sum()
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut c = CounterSet::new();
        c.incr("request");
        c.add("request", 2);
        c.incr("grant");
        assert_eq!(c.get("request"), 3);
        assert_eq!(c.get("grant"), 1);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = CounterSet::new();
        c.incr("zeta");
        c.incr("alpha");
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CounterSet::new();
        a.add("x", 2);
        let mut b = CounterSet::new();
        b.add("x", 3);
        b.add("y", 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }
}
