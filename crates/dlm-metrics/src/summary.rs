//! Streaming summary statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / min / max over `f64` observations.
///
/// Uses Welford's numerically stable online update, so millions of simulated
/// latencies can be folded without keeping them (and without catastrophic
/// cancellation).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merge another summary into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_inert() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn matches_closed_form_on_small_input() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential_fold() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64 * 0.5).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..40] {
            left.record(x);
        }
        for &x in &xs[40..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.record(3.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 3.0);
    }
}
