//! Measurement utilities for the locking experiments: streaming summary
//! statistics, power-of-two latency histograms, and labelled counter sets.
//!
//! Everything here is allocation-light and branch-cheap so instrumentation
//! does not distort the simulator's hot loop (per the perf-book guidance the
//! histogram bucketing is a `leading_zeros` instruction, not a search).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod histogram;
mod summary;

pub use counters::CounterSet;
pub use histogram::{Histogram, Percentiles};
pub use summary::Summary;
