//! Power-of-two bucketed histogram for latency distributions.

use serde::{Deserialize, Serialize};

/// Number of sub-buckets per power-of-two octave (2 bits of precision,
/// i.e. relative error bounded by 25 %; enough for latency *shape* studies
/// while keeping the histogram at a fixed, small size).
const SUBBUCKET_BITS: u32 = 2;
const SUBBUCKETS: usize = 1 << SUBBUCKET_BITS;
/// Octaves covered: values up to 2^40 (≈ 10^12) — far beyond any simulated
/// latency in microseconds.
const OCTAVES: usize = 40;

/// A log-scaled histogram over `u64` observations (e.g. microseconds).
///
/// Bucketing is HDR-style: the octave is `floor(log2(x))` and each octave is
/// split into four linear sub-buckets, so recording is two shifts and an
/// index — no search, no allocation after construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: u128,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; OCTAVES * SUBBUCKETS],
            count: 0,
            total: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUBBUCKETS as u64 {
            // Values 0..4 land in the first octave's linear cells.
            return value as usize;
        }
        let octave = 63 - value.leading_zeros();
        let shift = octave - SUBBUCKET_BITS;
        let sub = ((value >> shift) & (SUBBUCKETS as u64 - 1)) as usize;
        let idx = (octave as usize - SUBBUCKET_BITS as usize + 1) * SUBBUCKETS + sub;
        idx.min(OCTAVES * SUBBUCKETS - 1)
    }

    /// Representative (lower-bound) value of bucket `idx`.
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUBBUCKETS {
            return idx as u64;
        }
        let octave = idx / SUBBUCKETS - 1 + SUBBUCKET_BITS as usize;
        let sub = idx % SUBBUCKETS;
        (1u64 << octave) + ((sub as u64) << (octave - SUBBUCKET_BITS as usize))
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.total += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded values (tracked exactly, not from buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`), accurate to the bucket's
    /// 25 % relative width. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_floor(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median shortcut.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Merge another histogram (same fixed geometry) into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Iterate non-empty buckets as `(floor_value, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 1), (3, 1)]);
    }

    #[test]
    fn bucket_floor_round_trips_within_error() {
        // floor(bucket(v)) <= v and within 25 % relative error.
        for v in [1u64, 5, 7, 100, 1000, 12345, 1 << 20, (1 << 30) + 12345] {
            let idx = Histogram::bucket_index(v);
            let floor = Histogram::bucket_floor(idx);
            assert!(floor <= v, "floor({v}) = {floor}");
            assert!(
                (v - floor) as f64 <= 0.25 * v as f64 + 1.0,
                "bucket error too large for {v}: floor {floor}"
            );
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 17 % 997 + 1);
        }
        let q10 = h.quantile(0.10);
        let q50 = h.quantile(0.50);
        let q99 = h.quantile(0.99);
        assert!(q10 <= q50 && q50 <= q99);
        assert!(q99 <= h.max());
        assert!(q10 >= h.min());
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for i in 0..500u64 {
            let v = (i * 31) % 10_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.mean(), combined.mean());
        assert_eq!(a.max(), combined.max());
        assert_eq!(a.quantile(0.9), combined.quantile(0.9));
    }

    #[test]
    fn huge_values_saturate_into_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
        // Quantile is clamped by the exact max.
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
