//! Power-of-two bucketed histogram for latency distributions.

use serde::{Deserialize, Serialize};

/// Number of sub-buckets per power-of-two octave (2 bits of precision,
/// i.e. relative error bounded by 25 %; enough for latency *shape* studies
/// while keeping the histogram at a fixed, small size).
const SUBBUCKET_BITS: u32 = 2;
const SUBBUCKETS: usize = 1 << SUBBUCKET_BITS;
/// Octaves covered: values up to 2^40 (≈ 10^12) — far beyond any simulated
/// latency in microseconds.
const OCTAVES: usize = 40;

/// A log-scaled histogram over `u64` observations (e.g. microseconds).
///
/// Bucketing is HDR-style: the octave is `floor(log2(x))` and each octave is
/// split into four linear sub-buckets, so recording is two shifts and an
/// index — no search, no allocation after construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: u128,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; OCTAVES * SUBBUCKETS],
            count: 0,
            total: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUBBUCKETS as u64 {
            // Values 0..4 land in the first octave's linear cells.
            return value as usize;
        }
        let octave = 63 - value.leading_zeros();
        let shift = octave - SUBBUCKET_BITS;
        let sub = ((value >> shift) & (SUBBUCKETS as u64 - 1)) as usize;
        let idx = (octave as usize - SUBBUCKET_BITS as usize + 1) * SUBBUCKETS + sub;
        idx.min(OCTAVES * SUBBUCKETS - 1)
    }

    /// Representative (lower-bound) value of bucket `idx`.
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUBBUCKETS {
            return idx as u64;
        }
        let octave = idx / SUBBUCKETS - 1 + SUBBUCKET_BITS as usize;
        let sub = idx % SUBBUCKETS;
        (1u64 << octave) + ((sub as u64) << (octave - SUBBUCKET_BITS as usize))
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.total += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded values (tracked exactly, not from buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`), accurate to the bucket's
    /// 25 % relative width. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_floor(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median shortcut.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Merge another histogram (same fixed geometry) into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Iterate non-empty buckets as `(floor_value, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
    }

    /// The three tail quantiles every report in this repo cares about.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Serialize into the compact non-zero-bucket text encoding:
    ///
    /// ```text
    /// v1;<count>;<total>;<min>;<max>;<idx>:<n>,<idx>:<n>,...
    /// ```
    ///
    /// Only non-empty buckets are listed (an idle histogram is 160 zeros),
    /// and the exact `count`/`total`/`min`/`max` ride alongside so a decoded
    /// histogram reproduces `mean`, `min`, `max`, and every quantile
    /// bit-for-bit. The workspace's serde is a no-op shim, so this string is
    /// the real wire format used by report JSON and the bench baseline.
    pub fn encode_compact(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "v1;{};{};{};{};",
            self.count, self.total, self.min, self.max
        );
        let mut first = true;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{idx}:{c}");
        }
        out
    }

    /// Decode a string produced by [`Histogram::encode_compact`].
    pub fn decode_compact(s: &str) -> Result<Histogram, String> {
        let mut parts = s.splitn(6, ';');
        let version = parts.next().ok_or("empty histogram encoding")?;
        if version != "v1" {
            return Err(format!("unknown histogram encoding version {version:?}"));
        }
        let mut field = |name: &str| {
            parts
                .next()
                .ok_or_else(|| format!("histogram encoding missing {name}"))
        };
        let count: u64 = field("count")?.parse().map_err(|e| format!("count: {e}"))?;
        let total: u128 = field("total")?.parse().map_err(|e| format!("total: {e}"))?;
        let min: u64 = field("min")?.parse().map_err(|e| format!("min: {e}"))?;
        let max: u64 = field("max")?.parse().map_err(|e| format!("max: {e}"))?;
        let buckets_str = field("buckets")?;
        let mut h = Histogram::new();
        h.count = count;
        h.total = total;
        h.min = min;
        h.max = max;
        let mut bucket_sum = 0u64;
        if !buckets_str.is_empty() {
            for pair in buckets_str.split(',') {
                let (idx, c) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("malformed bucket entry {pair:?}"))?;
                let idx: usize = idx.parse().map_err(|e| format!("bucket index: {e}"))?;
                let c: u64 = c.parse().map_err(|e| format!("bucket count: {e}"))?;
                if idx >= OCTAVES * SUBBUCKETS {
                    return Err(format!("bucket index {idx} out of range"));
                }
                h.buckets[idx] += c;
                bucket_sum += c;
            }
        }
        if bucket_sum != count {
            return Err(format!(
                "bucket counts sum to {bucket_sum} but header count is {count}"
            ));
        }
        Ok(h)
    }
}

/// p50/p95/p99 extracted from a [`Histogram`], each accurate to the
/// histogram's 25 % bucket width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median (0.50 quantile).
    pub p50: u64,
    /// 0.95 quantile.
    pub p95: u64,
    /// 0.99 quantile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 1), (3, 1)]);
    }

    #[test]
    fn bucket_floor_round_trips_within_error() {
        // floor(bucket(v)) <= v and within 25 % relative error.
        for v in [1u64, 5, 7, 100, 1000, 12345, 1 << 20, (1 << 30) + 12345] {
            let idx = Histogram::bucket_index(v);
            let floor = Histogram::bucket_floor(idx);
            assert!(floor <= v, "floor({v}) = {floor}");
            assert!(
                (v - floor) as f64 <= 0.25 * v as f64 + 1.0,
                "bucket error too large for {v}: floor {floor}"
            );
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 17 % 997 + 1);
        }
        let q10 = h.quantile(0.10);
        let q50 = h.quantile(0.50);
        let q99 = h.quantile(0.99);
        assert!(q10 <= q50 && q50 <= q99);
        assert!(q99 <= h.max());
        assert!(q10 >= h.min());
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for i in 0..500u64 {
            let v = (i * 31) % 10_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.mean(), combined.mean());
        assert_eq!(a.max(), combined.max());
        assert_eq!(a.quantile(0.9), combined.quantile(0.9));
    }

    #[test]
    fn huge_values_saturate_into_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
        // Quantile is clamped by the exact max.
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn compact_encoding_round_trips() {
        let mut h = Histogram::new();
        for i in 0..700u64 {
            h.record((i * 131) % 50_000);
        }
        let encoded = h.encode_compact();
        let decoded = Histogram::decode_compact(&encoded).expect("decode");
        assert_eq!(decoded.count(), h.count());
        assert_eq!(decoded.mean(), h.mean());
        assert_eq!(decoded.min(), h.min());
        assert_eq!(decoded.max(), h.max());
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(decoded.quantile(q), h.quantile(q), "quantile {q}");
        }
        // Round-tripping again is a fixed point.
        assert_eq!(decoded.encode_compact(), encoded);
    }

    #[test]
    fn compact_encoding_of_empty_histogram() {
        let h = Histogram::new();
        let decoded = Histogram::decode_compact(&h.encode_compact()).expect("decode");
        assert_eq!(decoded.count(), 0);
        assert_eq!(decoded.quantile(0.99), 0);
        assert_eq!(decoded.max(), 0);
    }

    #[test]
    fn compact_decode_rejects_malformed_input() {
        for bad in [
            "",
            "v2;0;0;0;0;",
            "v1;1;0;0;0;",      // count mismatch: header says 1, no buckets
            "v1;1;0;0;0;999:1", // bucket index out of range
            "v1;1;0;0;0;abc",   // malformed pair
            "v1;not-a-number;0;0;0;",
        ] {
            assert!(Histogram::decode_compact(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn percentiles_match_individual_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let p = h.percentiles();
        assert_eq!(p.p50, h.quantile(0.50));
        assert_eq!(p.p95, h.quantile(0.95));
        assert_eq!(p.p99, h.quantile(0.99));
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
    }
}
