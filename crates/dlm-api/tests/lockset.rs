//! Tests of the CosConcurrency-style facade.

use dlm_api::LockSet;
use dlm_cluster::{Cluster, ClusterConfig};
use dlm_core::{LockId, Mode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn two_node_sets() -> (Cluster, LockSet, LockSet) {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        locks: 1,
        ..Default::default()
    });
    let a = LockSet::new(c.handle(0), LockId::TABLE);
    let b = LockSet::new(c.handle(1), LockId::TABLE);
    (c, a, b)
}

#[test]
fn lock_unlock_round_trip() {
    let (c, a, _b) = two_node_sets();
    a.lock(Mode::Write).unwrap();
    a.unlock().unwrap();
    c.shutdown();
}

#[test]
fn try_lock_is_conservative_and_local() {
    let (c, a, b) = two_node_sets();
    // Node 0 starts with the token: try_lock succeeds locally.
    assert!(a.try_lock(Mode::Write).unwrap());
    // Node 1 cannot admit anything locally (no ownership): fails without
    // blocking even though it *would* eventually get the lock.
    assert!(!b.try_lock(Mode::IntentRead).unwrap());
    a.unlock().unwrap();
    let report = c.shutdown();
    assert_eq!(report.messages_sent, 0, "try_lock never sends messages");
}

#[test]
fn guard_releases_on_drop() {
    let (c, a, b) = two_node_sets();
    {
        let g = a.guard(Mode::Write).unwrap();
        assert_eq!(g.mode(), Mode::Write);
    } // dropped here
    b.lock(Mode::Write).unwrap(); // would deadlock if the guard leaked
    b.unlock().unwrap();
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

#[test]
fn with_helper_runs_closure_under_lock() {
    let (c, a, _b) = two_node_sets();
    let x = a.with(Mode::Read, || 21 * 2).unwrap();
    assert_eq!(x, 42);
    c.shutdown();
}

#[test]
fn change_mode_upgrade_is_atomic() {
    let (c, a, _b) = two_node_sets();
    a.lock(Mode::Upgrade).unwrap();
    a.change_mode(Mode::Upgrade, Mode::Write).unwrap();
    a.unlock().unwrap();
    c.shutdown();
}

#[test]
fn change_mode_downgrade_reacquires() {
    let (c, a, _b) = two_node_sets();
    a.lock(Mode::Write).unwrap();
    a.change_mode(Mode::Write, Mode::Read).unwrap();
    a.unlock().unwrap();
    c.shutdown();
}

#[test]
fn read_then_write_is_consistent_under_racing_upgraders() {
    // The §3.4 motivation: two racing read-modify-write clients must not
    // lose an update. With U-mode upgrades, increments serialize.
    let c = Cluster::new(ClusterConfig {
        nodes: 4,
        locks: 1,
        ..Default::default()
    });
    let counter = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let set = LockSet::new(c.handle(i), LockId::TABLE);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..10 {
                    set.read_then_write(
                        || counter.load(Ordering::SeqCst),
                        |seen| counter.store(seen + 1, Ordering::SeqCst),
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(
        counter.load(Ordering::SeqCst),
        40,
        "no lost updates across racing upgraders"
    );
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
}

#[test]
fn metrics_snapshot_reflects_api_traffic() {
    let (c, a, b) = two_node_sets();
    a.lock(Mode::Write).unwrap();
    a.unlock().unwrap();
    b.lock(Mode::Write).unwrap();
    b.unlock().unwrap();
    let snap = dlm_api::metrics_snapshot(&c);
    for needle in [
        "# TYPE dlm_messages_total counter",
        "dlm_acquires_total{node=\"0\"} 1",
        "dlm_acquires_total{node=\"1\"} 1",
        "dlm_releases_total{node=\"0\"} 1",
        "dlm_acquire_latency_us{quantile=\"0.5\"}",
        "dlm_acquire_hops_count 2",
    ] {
        assert!(snap.contains(needle), "snapshot missing {needle}:\n{snap}");
    }
    c.shutdown();
}

/// The service-level pipeline: bulk operations on distinct locks through a
/// sharded node, correlated back by `(lock, tag)`, interoperating with the
/// blocking LockSet surface over the same cluster.
#[test]
fn pipeline_interoperates_with_locksets() {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        locks: 128,
        shards: 2,
        ..Default::default()
    });
    let mut pipe = dlm_api::pipeline(&c, 1);
    for l in 0..128u32 {
        pipe.submit_acquire(LockId(l), Mode::Write, l as u64)
            .unwrap();
    }
    for _ in 0..128 {
        let comp = pipe.recv().unwrap();
        assert_eq!(comp.result, Ok(()), "lock {:?}", comp.lock);
        assert_eq!(comp.lock.0 as u64, comp.tag, "completion correlates");
    }
    // While node 1 holds lock 7, node 0's LockSet cannot try-take it …
    let set = LockSet::new(c.handle(0), LockId(7));
    assert!(!set.try_lock(Mode::Write).unwrap());
    // … and after the pipelined release it can.
    pipe.submit_release(LockId(7), 999).unwrap();
    pipe.flush().unwrap();
    assert_eq!(pipe.recv().unwrap().tag, 999);
    set.lock(Mode::Write).unwrap();
    set.unlock().unwrap();
    for l in (0..128u32).filter(|&l| l != 7) {
        pipe.submit_release(LockId(l), l as u64).unwrap();
    }
    pipe.flush().unwrap();
    while pipe.outstanding() > 0 {
        assert!(pipe.recv().unwrap().result.is_ok());
    }
    c.quiesce(Duration::from_millis(10));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.replies_dropped, 0);
}
