//! A Concurrency-Service-style lock API over the cluster runtime.
//!
//! The paper adopts the locking model of the OMG CORBA **Concurrency
//! Service** \[10\] — lock sets with five modes, `lock` / `try_lock` /
//! `unlock` / `change_mode` operations. This crate offers that surface on
//! top of [`dlm_cluster`], plus idiomatic Rust additions (RAII guards,
//! closure helpers).
//!
//! Deviations from the OMG spec, all inherited from the paper's model:
//!
//! * one held mode per node per lock set (the protocol's single-holder
//!   model); recursive/multi-mode holds are not supported,
//! * `change_mode` is atomic only for the U→W upgrade (Rule 7); any other
//!   transition releases and re-acquires, and may therefore observe an
//!   intervening holder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dlm_cluster::{Cluster, ClusterError, NodeHandle};
use dlm_core::{LockId, Mode};

pub use dlm_cluster::{Completion, Pipeline};

/// A pipelined client to node `id` of `cluster`: submit operations on many
/// distinct locks without blocking per call, then drain [`Completion`]s.
///
/// The service-level counterpart to [`LockSet`] for bulk workloads — one
/// channel handoff carries a whole batch, and operations on distinct locks
/// overlap freely (the protocol's single-pending rule only serializes
/// operations on the *same* lock).
pub fn pipeline(cluster: &Cluster, id: u32) -> Pipeline {
    cluster.handle(id).pipeline()
}

/// Prometheus-text metrics snapshot of the cluster serving this API:
/// message/drop counters, in-flight gauges, per-node operation totals, and
/// acquire latency/hop summaries with p50/p95/p99 quantiles.
///
/// A thin passthrough to [`Cluster::metrics_snapshot`] so service consumers
/// scrape observability through the same crate they lock through, without
/// depending on `dlm_cluster` directly.
pub fn metrics_snapshot(cluster: &Cluster) -> String {
    cluster.metrics_snapshot()
}

/// A named set of locks (one protocol instance per member), bound to one
/// cluster node.
///
/// Mirrors `CosConcurrency::LockSet`: the same lock object, reached from
/// different nodes' `LockSet`s, arbitrates between them.
///
/// ```
/// use dlm_api::LockSet;
/// use dlm_cluster::{Cluster, ClusterConfig};
/// use dlm_core::{LockId, Mode};
///
/// let cluster = Cluster::new(ClusterConfig { nodes: 2, ..Default::default() });
/// let here = LockSet::new(cluster.handle(0), LockId::TABLE);
/// let there = LockSet::new(cluster.handle(1), LockId::TABLE);
///
/// // RAII guard on node 0 …
/// let guard = here.guard(Mode::Read).unwrap();
/// // … shared Read is still available to node 1 (compatible modes).
/// there.lock(Mode::Read).unwrap();
/// there.unlock().unwrap();
/// drop(guard);
/// cluster.shutdown();
/// ```
#[derive(Clone)]
pub struct LockSet {
    handle: NodeHandle,
    lock: LockId,
}

impl LockSet {
    /// Bind the lock object `lock` on the node behind `handle`.
    pub fn new(handle: NodeHandle, lock: LockId) -> Self {
        LockSet { handle, lock }
    }

    /// The lock object this set drives.
    pub fn lock_id(&self) -> LockId {
        self.lock
    }

    /// Acquire in `mode`, blocking until granted (OMG `lock`).
    pub fn lock(&self, mode: Mode) -> Result<(), ClusterError> {
        self.handle.acquire(self.lock, mode)
    }

    /// Non-blocking acquire (OMG `try_lock`): succeeds only if this node can
    /// admit the mode locally without any message exchange. Conservative: a
    /// `false` means "not free right now from here", not "held elsewhere".
    pub fn try_lock(&self, mode: Mode) -> Result<bool, ClusterError> {
        self.handle.try_acquire(self.lock, mode)
    }

    /// Release the held mode (OMG `unlock`).
    pub fn unlock(&self) -> Result<(), ClusterError> {
        self.handle.release(self.lock)
    }

    /// Change the held mode (OMG `change_mode`).
    ///
    /// `U → W` uses the protocol's atomic Rule 7 upgrade (no intervening
    /// holder possible). Every other transition is release-then-acquire and
    /// is documented as non-atomic.
    pub fn change_mode(&self, held: Mode, new: Mode) -> Result<(), ClusterError> {
        if held == Mode::Upgrade && new == Mode::Write {
            return self.handle.upgrade(self.lock);
        }
        self.handle.release(self.lock)?;
        self.handle.acquire(self.lock, new)
    }

    /// Acquire in `mode` and return an RAII guard that unlocks on drop.
    pub fn guard(&self, mode: Mode) -> Result<LockGuard<'_>, ClusterError> {
        self.lock(mode)?;
        Ok(LockGuard {
            set: self,
            mode,
            armed: true,
        })
    }

    /// Run `f` while holding `mode` (lock/unlock around the closure).
    pub fn with<R>(&self, mode: Mode, f: impl FnOnce() -> R) -> Result<R, ClusterError> {
        let _guard = self.guard(mode)?;
        Ok(f())
    }

    /// Read-modify-write helper exercising the full upgrade pattern:
    /// `read` runs under `U`, then the lock is atomically upgraded to `W`
    /// and `write` runs with the value `read` produced — the exact
    /// read-then-dependent-write consistency scenario upgrade locks exist
    /// for (§3.4).
    pub fn read_then_write<T, R>(
        &self,
        read: impl FnOnce() -> T,
        write: impl FnOnce(T) -> R,
    ) -> Result<R, ClusterError> {
        self.lock(Mode::Upgrade)?;
        let value = read();
        if let Err(e) = self.handle.upgrade(self.lock) {
            let _ = self.unlock();
            return Err(e);
        }
        let result = write(value);
        self.unlock()?;
        Ok(result)
    }
}

/// RAII guard returned by [`LockSet::guard`]; releases the lock on drop.
pub struct LockGuard<'a> {
    set: &'a LockSet,
    mode: Mode,
    armed: bool,
}

impl LockGuard<'_> {
    /// The mode this guard holds.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Release explicitly (instead of on drop), surfacing any error.
    pub fn release(mut self) -> Result<(), ClusterError> {
        self.armed = false;
        self.set.unlock()
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            // Drop cannot report errors; a shut-down cluster is acceptable.
            let _ = self.set.unlock();
        }
    }
}
