//! A small scoped worker pool with a deterministic ordered merge.
//!
//! The figure sweeps used to spawn one thread per x-point, which over-spawns
//! on small machines and under-uses big ones when series lengths differ.
//! [`run_jobs`] instead fans a flat job list across a fixed pool: workers
//! claim jobs by atomically bumping a shared cursor, and every result lands
//! in the slot of the job that produced it — so the returned vector is in
//! **job order** regardless of which worker ran what or when it finished.
//! Callers that fold floating-point results therefore see the exact same
//! accumulation order as a sequential loop, keeping figure output
//! bit-identical for any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run every job in `jobs` on a pool of `workers` threads and return the
/// results in job order.
///
/// `workers` is clamped to `[1, jobs.len()]`; with one worker the pool
/// degenerates to a plain sequential map (no threads spawned). A panicking
/// job propagates out of the scope, as the per-point threads it replaces
/// did.
pub fn run_jobs<J, T>(jobs: Vec<J>, workers: usize, run: impl Fn(J) -> T + Sync) -> Vec<T>
where
    J: Send,
    T: Send,
{
    let workers = workers.clamp(1, jobs.len().max(1));
    if workers <= 1 {
        return jobs.into_iter().map(run).collect();
    }
    let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot")
                    .take()
                    .expect("each job claimed once");
                *results[i].lock().expect("result slot") = Some(run(job));
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        // Stagger finish times so late jobs complete *before* early ones.
        let jobs: Vec<u64> = (0..24).collect();
        for workers in [1, 2, 3, 8, 100] {
            let out = run_jobs(jobs.clone(), workers, |j| {
                std::thread::sleep(std::time::Duration::from_micros((24 - j) * 50));
                j * 10
            });
            assert_eq!(
                out,
                jobs.iter().map(|j| j * 10).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = run_jobs(Vec::<u32>::new(), 4, |j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_and_parallel_fold_identically() {
        // The property the figure harness depends on: summing the returned
        // values in order is bit-identical to a sequential fold.
        let jobs: Vec<u32> = (0..64).collect();
        let f = |j: u32| 1.0f64 / (j as f64 + 0.1);
        let seq: f64 = jobs.iter().map(|&j| f(j)).sum();
        let par: f64 = run_jobs(jobs, 7, f).into_iter().sum();
        assert_eq!(seq.to_bits(), par.to_bits());
    }
}
