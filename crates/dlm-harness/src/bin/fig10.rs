//! Regenerate Figure 10 (absolute request latency vs. nodes per ratio).

use dlm_harness::{fig10, render_table, write_tsv, FigureOptions};

fn main() {
    let fig = fig10(&FigureOptions::default());
    print!("{}", render_table(&fig));
    let path = write_tsv(&fig, std::path::Path::new("results")).expect("write tsv");
    eprintln!("wrote {}", path.display());
}
