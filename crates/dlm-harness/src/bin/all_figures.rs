//! Regenerate every figure and the ablation study in one go.

use dlm_harness::{ablations, fig10, fig7, fig8, fig9, render_table, write_tsv, FigureOptions};

fn main() {
    let opts = FigureOptions::default();
    let dir = std::path::Path::new("results");
    for fig in [
        fig7(&opts),
        fig8(&opts),
        fig9(&opts),
        fig10(&opts),
        ablations(&opts),
    ] {
        println!("{}", render_table(&fig));
        let path = write_tsv(&fig, dir).expect("write tsv");
        eprintln!("wrote {}\n", path.display());
    }
}
