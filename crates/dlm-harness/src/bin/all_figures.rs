//! Regenerate every figure and the ablation study in one go, from one
//! shared plan: Figures 7/8 and 9/10 each read two metrics off the same
//! simulation runs, and every `(point, seed)` job fans out over the worker
//! pool.

use dlm_harness::{all_figures, render_table, write_tsv, FigureOptions};

fn main() {
    let opts = FigureOptions::default();
    let dir = std::path::Path::new("results");
    for fig in all_figures(&opts) {
        println!("{}", render_table(&fig));
        let path = write_tsv(&fig, dir).expect("write tsv");
        eprintln!("wrote {}\n", path.display());
    }
}
