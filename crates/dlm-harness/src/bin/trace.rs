//! Message-by-message protocol trace of a contended scenario, for study and
//! debugging: two readers, a writer and an upgrader on five nodes. Every
//! protocol message is printed as it is delivered — described by the
//! *structured events* the receiving state machine emits (rule firings,
//! queue churn, parent changes) — together with the state of the receiving
//! node.
//!
//! Run with: `cargo run -p dlm-harness --bin trace`

use dlm_core::testkit::LockStepNet;
use dlm_core::Mode;
use dlm_trace::{ProtocolEvent, Recorder, VecRecorder};
use std::cell::RefCell;
use std::rc::Rc;

struct Tracer {
    net: LockStepNet,
    rec: Rc<RefCell<VecRecorder>>,
    step: u32,
}

impl Tracer {
    fn new(n: usize) -> Self {
        let mut net = LockStepNet::star(n);
        let rec = Rc::new(RefCell::new(VecRecorder::new()));
        net.record_into(0, Rc::clone(&rec) as Rc<RefCell<dyn Recorder>>);
        Tracer { net, rec, step: 0 }
    }

    /// Events recorded since index `from`, rendered one per line.
    fn emitted_since(&self, from: usize) -> Vec<String> {
        self.rec.borrow().records[from..]
            .iter()
            .map(|r| format!("n{}: {}", r.node, concise(&r.event)))
            .collect()
    }

    fn app(&mut self, what: &str, f: impl FnOnce(&mut LockStepNet)) {
        println!("\n>> {what}");
        let before = self.rec.borrow().records.len();
        f(&mut self.net);
        for line in self.emitted_since(before) {
            println!("        . {line}");
        }
        self.drain();
    }

    fn drain(&mut self) {
        while let Some(flight) = self.net.in_flight().first().cloned() {
            self.step += 1;
            let before = self.rec.borrow().records.len();
            self.net.deliver_one();
            let kind = flight.message.kind().label();
            println!(
                "  [{:>3}] {} -> {}  {:<8}",
                self.step, flight.from, flight.to, kind,
            );
            for line in self.emitted_since(before) {
                println!("        . {line}");
            }
            let receiver = self.net.node(flight.to.0);
            println!(
                "        {} now: token={} owned={} held={} pending={:?} q={} frozen={}",
                flight.to,
                receiver.has_token(),
                receiver.owned(),
                receiver.held(),
                receiver.pending().map(|m| m.to_string()),
                receiver.queue_len(),
                receiver.frozen(),
            );
        }
    }
}

/// One-line human rendering of a structured event.
fn concise(event: &ProtocolEvent) -> String {
    use ProtocolEvent::*;
    match event {
        RequestSent { to, mode, upgrade } => {
            let tag = if *upgrade { " (upgrade)" } else { "" };
            format!("requests {mode}{tag} from n{to}")
        }
        RequestForwarded {
            to,
            requester,
            mode,
        } => format!("forwards n{requester}'s {mode} request to n{to}"),
        RequestQueued {
            requester,
            mode,
            depth,
        } => format!("queues n{requester}'s {mode} request (depth {depth})"),
        QueueServed {
            requester,
            mode,
            depth,
        } => format!("serves n{requester}'s queued {mode} request ({depth} left)"),
        ChildGrant { to, mode } => format!("grants {mode} copy to n{to}"),
        LocalGrant { mode } => format!("now holds {mode}"),
        GrantReceived { from, mode } => format!("granted {mode} by n{from}"),
        TokenSent { to, mode, queued } => {
            format!("sends token to n{to} for {mode} (+{queued} queued)")
        }
        TokenReceived { from, queued } => format!("receives token from n{from} (+{queued} queued)"),
        ReleaseSent { to, new_owned, .. } => format!("tells n{to}: owned now {new_owned}"),
        ReleaseApplied {
            from,
            new_owned,
            stale,
        } => {
            let tag = if *stale { " (stale, ignored)" } else { "" };
            format!("applies n{from}'s release, child owns {new_owned}{tag}")
        }
        Frozen { modes } => format!("frozen := {modes}"),
        Unfrozen => "unfrozen".into(),
        FreezeSent { to, modes } => format!("tells n{to}: frozen := {modes}"),
        UpgradeStarted => "starts U->W upgrade".into(),
        Upgraded => "upgraded to W".into(),
        ParentChanged { old, new } => {
            let f = |p: &Option<u32>| p.map(|n| format!("n{n}")).unwrap_or("root".into());
            format!("parent {} -> {}", f(old), f(new))
        }
        FrameDropped { to } => format!("frame to n{to} dropped in flight"),
        Retransmit { to, seq, attempt } => {
            format!("retransmits link-seq {seq} to n{to} (attempt {attempt})")
        }
        DupSuppressed { from, seq } => format!("suppresses duplicate link-seq {seq} from n{from}"),
        DecodeError { from } => format!("drops malformed frame from n{from}"),
        RequestStart { req, mode, upgrade } => {
            let tag = if *upgrade { " (upgrade)" } else { "" };
            format!("opens request {req:#x} for {mode}{tag}")
        }
        RequestHop { req, hop } => format!("request {req:#x} hop {hop} lands"),
        RequestGrant { req, hops } => format!("closes request {req:#x} after {hops} hops"),
        NodeSuspected { node } => format!("suspects n{node} dead"),
        EpochBump { epoch } => format!("enters epoch {epoch}"),
        TokenRegenerated { epoch } => format!("regenerates the token (epoch {epoch})"),
        StaleEpochFenced { from, epoch } => {
            format!("fences stale epoch-{epoch} frame from n{from}")
        }
        RecoverSent { to, epoch } => format!("gossips recover (epoch {epoch}) to n{to}"),
    }
}

fn main() {
    let mut t = Tracer::new(5);
    t.app(
        "n1 acquires R (idle token copy-grants, stays at n0)",
        |net| net.acquire(1, Mode::Read),
    );
    t.app("n2 acquires IR (compatible, shares)", |net| {
        net.acquire(2, Mode::IntentRead)
    });
    t.app("n3 requests W (queued; IR and R freeze)", |net| {
        net.acquire(3, Mode::Write)
    });
    t.app("n4 requests IR (frozen: parks behind the W)", |net| {
        net.acquire(4, Mode::IntentRead)
    });
    t.app("n1 releases R", |net| net.release(1));
    t.app(
        "n2 releases IR (drains the table; W is served by token transfer, then n4's IR)",
        |net| net.release(2),
    );
    t.app("n3 releases W (n4's parked IR finally granted)", |net| {
        net.release(3)
    });
    t.app("n4 releases IR", |net| net.release(4));

    println!(
        "\ntotal messages: {}   grants in order: {:?}",
        t.net.messages_sent,
        t.net
            .granted
            .iter()
            .map(|(n, m)| format!("{n}:{m}"))
            .collect::<Vec<_>>()
    );
    let recorded = t.rec.borrow();
    let sends = recorded
        .records
        .iter()
        .filter(|r| r.event.send_class().is_some())
        .count() as u64;
    assert_eq!(sends, t.net.messages_sent, "1:1 send-event contract");
    println!(
        "trace: {} events, {} send-class (= messages)",
        recorded.records.len(),
        sends
    );
    drop(recorded);
    let errors = t.net.audit_now(true);
    assert!(errors.is_empty(), "{errors:?}");
    println!("final audit: clean");
}
