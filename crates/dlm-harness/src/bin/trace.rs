//! Message-by-message protocol trace of a contended scenario, for study and
//! debugging: two readers, a writer and an upgrader on five nodes, every
//! protocol message printed as it is delivered together with the state of
//! the receiving node.
//!
//! Run with: `cargo run -p dlm-harness --bin trace`

use dlm_core::testkit::LockStepNet;
use dlm_core::{Mode, NodeId};

struct Tracer {
    net: LockStepNet,
    step: u32,
}

impl Tracer {
    fn new(n: usize) -> Self {
        Tracer {
            net: LockStepNet::star(n),
            step: 0,
        }
    }

    fn app(&mut self, what: &str, f: impl FnOnce(&mut LockStepNet)) {
        println!("\n>> {what}");
        f(&mut self.net);
        self.drain();
    }

    fn drain(&mut self) {
        loop {
            let Some(flight) = self.net.in_flight().first().cloned() else {
                break;
            };
            self.step += 1;
            let kind = flight.message.kind().label();
            println!(
                "  [{:>3}] {} -> {}  {:<8} {:?}",
                self.step,
                flight.from,
                flight.to,
                kind,
                concise(&flight.message),
            );
            self.net.deliver_one();
            let receiver = self.net.node(flight.to.0);
            println!(
                "        {} now: token={} owned={} held={} pending={:?} q={} frozen={}",
                flight.to,
                receiver.has_token(),
                receiver.owned(),
                receiver.held(),
                receiver.pending().map(|m| m.to_string()),
                receiver.queue_len(),
                receiver.frozen(),
            );
        }
    }
}

fn concise(message: &dlm_core::Message) -> String {
    use dlm_core::Message::*;
    match message {
        Request(q) => format!("{} wants {}", q.from, q.mode),
        Grant { mode } => format!("granted {mode}"),
        Token { mode, queue, .. } => format!("token for {mode} (+{} queued)", queue.len()),
        Release { new_owned, .. } => format!("owned now {new_owned}"),
        SetFrozen { modes } => format!("frozen := {modes}"),
    }
}

fn main() {
    let mut t = Tracer::new(5);
    t.app("n1 acquires R (idle token copy-grants, stays at n0)", |net| {
        net.acquire(1, Mode::Read)
    });
    t.app("n2 acquires IR (compatible, shares)", |net| {
        net.acquire(2, Mode::IntentRead)
    });
    t.app("n3 requests W (queued; IR and R freeze)", |net| {
        net.acquire(3, Mode::Write)
    });
    t.app("n4 requests IR (frozen: parks behind the W)", |net| {
        net.acquire(4, Mode::IntentRead)
    });
    t.app("n1 releases R", |net| net.release(1));
    t.app("n2 releases IR (drains the table; W is served by token transfer, then n4's IR)", |net| {
        net.release(2)
    });
    t.app("n3 releases W (n4's parked IR finally granted)", |net| net.release(3));
    t.app("n4 releases IR", |net| net.release(4));

    println!(
        "\ntotal messages: {}   grants in order: {:?}",
        t.net.messages_sent,
        t.net
            .granted
            .iter()
            .map(|(n, m)| format!("{n}:{m}"))
            .collect::<Vec<_>>()
    );
    let errors = t.net.audit_now(true);
    assert!(errors.is_empty(), "{errors:?}");
    println!("final audit: clean");
}
