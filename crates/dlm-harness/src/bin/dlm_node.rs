//! `dlm-node` — one cluster member as one OS process.
//!
//! Binds this member's socket, joins the cluster, and takes orders on
//! stdin (one command per line), reporting on stdout. The `dlm-harness`
//! driver spawns N of these to run the paper's workloads over real TCP or
//! UDP loopback — see DESIGN.md §16 and the README's "running a real
//! cluster" walkthrough, which drives this protocol by hand.
//!
//! ```text
//! dlm-node --me 0 --addrs 127.0.0.1:4501,127.0.0.1:4502 --locks 9 \
//!          [--shards 1] [--udp <loss>,<seed>]
//! ```
//!
//! Line protocol (every reply flushed):
//!
//! | stdin | stdout |
//! |---|---|
//! | (startup) | `ready` |
//! | `run <entries> <cs_us> <idle_us> <ops> <seed> <scale> <hot>` | `done <ops> <acquires>` |
//! | `churn <ops>` | `done <ops> <acquires>` |
//! | `idle?` | `idle <messages>` or `busy <messages>` |
//! | `acquire <lock> <ir\|iw\|r\|u\|w>` | `ok` (blocks until granted) |
//! | `release <lock>` | `ok` |
//! | `scan` | `locks <lock>:<has_token>:<epoch> …` |
//! | `suspects` | `suspects <id> …` |
//! | `repair <dead> <surv,…> <lock:root:epoch,…\|->` | `ok` |
//! | `shutdown` | `lat …`, `state …`×, `link …`×, `exit …`, then exits |
//!
//! The crash commands let the driver choreograph a member-kill recovery:
//! kill one process, poll the survivors' `suspects`, `scan` them, plan
//! centrally ([`dlm_cluster::plan_recovery`]), and broadcast `repair`.

use dlm_cluster::{LockId, Mode, Node, NodeConfig, SocketConfig};
use dlm_harness::sockload::{
    hex_encode, member_cluster_config, run_member_churn, run_member_workload,
};
use dlm_workload::{ProtocolKind, WorkloadParams};
use std::io::{BufRead, Write};
use std::net::SocketAddr;

fn usage() -> ! {
    eprintln!(
        "usage: dlm-node --me <id> --addrs <a:p,a:p,...> --locks <n> \
         [--shards <n>] [--udp <loss>,<seed>]"
    );
    std::process::exit(2);
}

struct Args {
    me: u32,
    addrs: Vec<SocketAddr>,
    locks: usize,
    shards: usize,
    udp: Option<(f64, u64)>,
}

fn parse_args() -> Args {
    let mut me = None;
    let mut addrs: Vec<SocketAddr> = Vec::new();
    let mut locks = None;
    let mut shards = 1usize;
    let mut udp = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--me" => me = value().parse().ok(),
            "--addrs" => {
                addrs = value()
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--locks" => locks = value().parse().ok(),
            "--shards" => shards = value().parse().unwrap_or_else(|_| usage()),
            "--udp" => {
                let v = value();
                let (loss, seed) = v.split_once(',').unwrap_or_else(|| usage());
                udp = Some((
                    loss.parse().unwrap_or_else(|_| usage()),
                    seed.parse().unwrap_or_else(|_| usage()),
                ));
            }
            _ => usage(),
        }
    }
    let (Some(me), Some(locks)) = (me, locks) else {
        usage()
    };
    if addrs.is_empty() || (me as usize) >= addrs.len() {
        usage();
    }
    Args {
        me,
        addrs,
        locks,
        shards,
        udp,
    }
}

fn main() {
    let args = parse_args();
    let nodes = args.addrs.len();

    // The workload's cluster parameters are fixed by `--locks`/`--shards`;
    // the `run` command re-checks that its workload fits them.
    let mut params = WorkloadParams::linux_cluster(nodes, ProtocolKind::Hier);
    params.entries = (args.locks - 1).max(1) as u32;
    let mut cluster = member_cluster_config(&params);
    cluster.locks = args.locks;
    cluster.shards = args.shards;

    let socket = match args.udp {
        None => SocketConfig::tcp(args.me, args.addrs.clone()),
        Some((loss, seed)) => SocketConfig::udp(args.me, args.addrs.clone(), loss, seed),
    };
    let node = Node::new(NodeConfig { cluster, socket }).unwrap_or_else(|e| {
        eprintln!("dlm-node {}: bind failed: {e}", args.me);
        std::process::exit(1);
    });
    let handle = node.handle();
    let me = node.id();

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let say = |out: &mut std::io::StdoutLock<'_>, line: &str| {
        writeln!(out, "{line}").expect("stdout");
        out.flush().expect("stdout flush");
    };
    say(&mut out, "ready");

    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        let mut words = line.split_whitespace();
        match words.next() {
            Some("run") => {
                let nums: Vec<u64> = words.map(|w| w.parse().expect("run arg")).collect();
                let [entries, cs_us, idle_us, ops, seed, scale, hot] = nums[..] else {
                    panic!("run wants: entries cs_us idle_us ops seed scale hot");
                };
                assert_eq!(
                    entries as usize + 1,
                    args.locks,
                    "workload table size must match --locks"
                );
                let mut p = WorkloadParams::linux_cluster(nodes, ProtocolKind::Hier);
                p.entries = entries as u32;
                p.cs_mean = cs_us;
                p.idle_mean = idle_us;
                p.ops_per_node = ops as u32;
                p.seed = seed;
                p.hot_entry_percent = hot as u8;
                let outcome = run_member_workload(&handle, me, &p, scale);
                say(
                    &mut out,
                    &format!("done {} {}", outcome.ops_completed, outcome.acquires),
                );
            }
            Some("churn") => {
                let ops: u32 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .expect("churn wants: ops");
                let entries = (args.locks - 1).max(1) as u32;
                let outcome = run_member_churn(&handle, me, entries, ops);
                say(
                    &mut out,
                    &format!("done {} {}", outcome.ops_completed, outcome.acquires),
                );
            }
            Some("idle?") => {
                let state = if node.is_idle() { "idle" } else { "busy" };
                say(&mut out, &format!("{state} {}", node.messages_sent()));
            }
            Some("acquire") => {
                let lock: u32 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .expect("acquire wants: lock mode");
                let mode = match words.next() {
                    Some("ir") => Mode::IntentRead,
                    Some("iw") => Mode::IntentWrite,
                    Some("r") => Mode::Read,
                    Some("u") => Mode::Upgrade,
                    Some("w") => Mode::Write,
                    other => panic!("acquire: bad mode {other:?}"),
                };
                handle.acquire(LockId(lock), mode).expect("acquire");
                say(&mut out, "ok");
            }
            Some("release") => {
                let lock: u32 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .expect("release wants: lock");
                handle.release(LockId(lock)).expect("release");
                say(&mut out, "ok");
            }
            Some("scan") => {
                let body = node
                    .scan_locks()
                    .iter()
                    .map(|(l, has, e)| format!("{l}:{}:{e}", u32::from(*has)))
                    .collect::<Vec<_>>()
                    .join(" ");
                say(&mut out, &format!("locks {body}"));
            }
            Some("suspects") => {
                let body = node
                    .suspects()
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                say(&mut out, &format!("suspects {body}"));
            }
            Some("repair") => {
                let dead: u32 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .expect("repair wants: dead survivors plans");
                let survivors: Vec<u32> = words
                    .next()
                    .expect("repair survivors")
                    .split(',')
                    .map(|w| w.parse().expect("survivor id"))
                    .collect();
                let plans_word = words.next().expect("repair plans");
                let plans: Vec<(u32, u32, u32)> = if plans_word == "-" {
                    Vec::new()
                } else {
                    plans_word
                        .split(',')
                        .map(|p| {
                            let mut it = p.split(':').map(|w| w.parse().expect("plan field"));
                            (
                                it.next().expect("plan lock"),
                                it.next().expect("plan root"),
                                it.next().expect("plan epoch"),
                            )
                        })
                        .collect()
                };
                node.repair(dead, &survivors, &plans);
                say(&mut out, "ok");
            }
            Some("shutdown") => {
                let report = node.shutdown();
                say(
                    &mut out,
                    &format!("lat {}", report.acquire_latency.encode_compact()),
                );
                let mut buf = Vec::new();
                for (lock, state) in &report.states {
                    buf.clear();
                    state.encode_state(&mut buf);
                    say(&mut out, &format!("state {lock} {}", hex_encode(&buf)));
                }
                for l in &report.links {
                    say(
                        &mut out,
                        &format!(
                            "link {} {} {} {} {} {} {} {}",
                            l.from,
                            l.to,
                            l.retransmits,
                            l.dropped,
                            l.wire_bytes,
                            l.resets,
                            l.proto_sent,
                            l.wire_sent
                        ),
                    );
                }
                say(
                    &mut out,
                    &format!(
                        "exit {} {} {}",
                        report.messages_sent, report.decode_errors, report.replies_dropped
                    ),
                );
                return;
            }
            Some(other) => panic!("unknown command: {other}"),
            None => {}
        }
    }
}
