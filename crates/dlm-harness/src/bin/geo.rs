//! Extension experiment (not in the paper, motivated by its §1: replicated
//! data "across geographically distant server farms"): two 16-node sites
//! with fast intra-site links, sweeping the WAN latency between them.
//!
//! The hierarchical protocol's copy-grants and intent-mode locality keep
//! most traffic intra-site once ownership settles; Naimi's token commutes
//! across the WAN for every remote handoff.

use dlm_harness::{render_table, write_tsv, Figure, Series};
use dlm_sim::{LatencyModel, TwoSite, MICROS_PER_MS};
use dlm_workload::{run_workload, ProtocolKind, WorkloadParams};

const WAN_MS: [u64; 5] = [5, 25, 50, 100, 200];

fn run(
    protocol: ProtocolKind,
    wan_ms: u64,
    metric: impl Fn(&dlm_workload::WorkloadReport) -> f64,
) -> f64 {
    let mut params = WorkloadParams::linux_cluster(32, protocol);
    params.latency = LatencyModel::uniform(MICROS_PER_MS); // 1 ms intra-site
    params.geo = Some(TwoSite {
        site_a: 16,
        wan: LatencyModel::uniform(wan_ms * MICROS_PER_MS),
    });
    let mut total = 0.0;
    for seed in 0..3u64 {
        params.seed = 0x6E0 + seed;
        let report = run_workload(&params);
        assert!(report.complete());
        total += metric(&report);
    }
    total / 3.0
}

fn main() {
    let mut series = Vec::new();
    for protocol in [ProtocolKind::Hier, ProtocolKind::NaimiPure] {
        let values = WAN_MS
            .iter()
            .map(|&wan| run(protocol, wan, |r| r.op_latency.mean() / 1000.0))
            .collect();
        series.push(Series {
            label: format!("{}-wait-ms", protocol.label()),
            values,
        });
        let values = WAN_MS
            .iter()
            .map(|&wan| run(protocol, wan, |r| r.messages_per_request()))
            .collect();
        series.push(Series {
            label: format!("{}-msgs", protocol.label()),
            values,
        });
    }
    let fig = Figure {
        name: "geo".into(),
        title: "Two-site deployment: WAN latency sensitivity (extension)".into(),
        x_label: "wan_ms".into(),
        y_label: "mean op wait (ms) / messages per request".into(),
        x: WAN_MS.iter().map(|&w| w as f64).collect(),
        series,
    };
    print!("{}", render_table(&fig));
    let path = write_tsv(&fig, std::path::Path::new("results")).expect("write tsv");
    eprintln!("wrote {}", path.display());
}
