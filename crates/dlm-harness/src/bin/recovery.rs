//! Regenerate the crash-recovery latency figure (ms from killing a member
//! to restored Write service, vs cluster size, token-holder and leaf
//! crashes) on the in-process cluster runtime.

use dlm_harness::{recovery, render_table, write_tsv, FigureOptions};

fn main() {
    let fig = recovery(&FigureOptions::default());
    print!("{}", render_table(&fig));
    let path = write_tsv(&fig, std::path::Path::new("results")).expect("write tsv");
    eprintln!("wrote {}", path.display());
}
