//! Extension experiment: hot-spot contention. An increasing fraction of
//! entry operations targets one "hot" fare; the hierarchical protocol's
//! shared read modes keep hot readers concurrent, while Naimi serializes
//! every access to the hot entry.

use dlm_harness::{render_table, write_tsv, Figure, Series};
use dlm_workload::{run_workload, ProtocolKind, WorkloadParams, WorkloadReport};

const HOT: [u8; 5] = [0, 25, 50, 75, 90];

fn run(protocol: ProtocolKind, hot: u8, metric: impl Fn(&WorkloadReport) -> f64) -> f64 {
    let mut total = 0.0;
    for seed in 0..3u64 {
        let mut params = WorkloadParams::linux_cluster(32, protocol);
        params.hot_entry_percent = hot;
        params.seed = 0xC0;
        params.seed += seed * 101;
        let report = run_workload(&params);
        assert!(report.complete());
        total += metric(&report);
    }
    total / 3.0
}

fn main() {
    let mut series = Vec::new();
    for protocol in [ProtocolKind::Hier, ProtocolKind::NaimiPure] {
        series.push(Series {
            label: format!("{}-wait-ms", protocol.label()),
            values: HOT
                .iter()
                .map(|&h| run(protocol, h, |r| r.op_latency.mean() / 1000.0))
                .collect(),
        });
        series.push(Series {
            label: format!("{}-p99-ms", protocol.label()),
            values: HOT
                .iter()
                .map(|&h| run(protocol, h, |r| r.op_latency.quantile(0.99) as f64 / 1000.0))
                .collect(),
        });
    }
    let fig = Figure {
        name: "contention".into(),
        title: "Hot-entry skew sensitivity (extension)".into(),
        x_label: "hot%".into(),
        y_label: "mean / p99 operation wait (ms)".into(),
        x: HOT.iter().map(|&h| h as f64).collect(),
        series,
    };
    print!("{}", render_table(&fig));
    let path = write_tsv(&fig, std::path::Path::new("results")).expect("write tsv");
    eprintln!("wrote {}", path.display());
}
