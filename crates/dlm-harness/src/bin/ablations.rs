//! Ablation study: disable each protocol feature in turn (16 nodes).

use dlm_harness::{ablations, render_table, write_tsv, FigureOptions};

fn main() {
    let fig = ablations(&FigureOptions::default());
    print!("{}", render_table(&fig));
    let path = write_tsv(&fig, std::path::Path::new("results")).expect("write tsv");
    eprintln!("wrote {}", path.display());
}
