//! Regenerate Figure 9 (message overhead vs. nodes per ratio, SP config).

use dlm_harness::{fig9, render_table, write_tsv, FigureOptions};

fn main() {
    let fig = fig9(&FigureOptions::default());
    print!("{}", render_table(&fig));
    let path = write_tsv(&fig, std::path::Path::new("results")).expect("write tsv");
    eprintln!("wrote {}", path.display());
}
