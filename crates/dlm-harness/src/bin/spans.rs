//! Request-span analyzer: reconstructs per-request critical paths from a
//! structured JSONL trace (`RequestStart` → `RequestHop`* → `RequestGrant`)
//! and reports hop-count and end-to-end latency distributions.
//!
//! * `spans <trace.jsonl>` — analyze an existing trace file.
//! * `spans [nodes]` — capture a fresh trace from a threaded cluster run
//!   (default 4 nodes), write it to `results/cluster<n>-trace.jsonl`,
//!   re-read it from disk, and analyze it. Every completed acquire must
//!   reconstruct into a span with a hop count and an end-to-end latency.
//! * `spans sweep` — run clusters at n ∈ {4, 16, 64} and print the
//!   hops-per-acquire vs log₂(n) table with p50/p95/p99 latencies (the
//!   EXPERIMENTS.md table).
//!
//! Run with: `cargo run -p dlm-harness --bin spans [-- <trace.jsonl>|<nodes>|sweep]`

use dlm_cluster::{Cluster, ClusterConfig, LockId, Mode};
use dlm_metrics::Histogram;
use dlm_trace::{jsonl, ProtocolEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::time::Duration;

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("sweep") => sweep(),
        Some(path) if !path.chars().all(|c| c.is_ascii_digit()) => {
            let file = File::open(path).unwrap_or_else(|e| panic!("open {path}: {e}"));
            let records = jsonl::read_jsonl(BufReader::new(file))
                .unwrap_or_else(|e| panic!("parse {path}: {e}"));
            println!("loaded {} records from {path}", records.len());
            let spans = reconstruct(&records);
            report(&spans, true);
        }
        arg => {
            let nodes = arg.and_then(|s| s.parse().ok()).unwrap_or(4);
            let records = capture(nodes);
            let spans = reconstruct(&records);
            report(&spans, true);
        }
    }
}

/// One reconstructed request span: open event, the network legs of its
/// causal chain, and (when completed) the closing grant.
struct Span {
    req: u64,
    start_at: u64,
    start_node: u32,
    mode: Mode,
    upgrade: bool,
    /// `(at, node, hop)` for every network leg that landed, in hop order.
    path: Vec<(u64, u32, u32)>,
    /// `(at, hops)` of the closing grant; `None` for incomplete spans.
    grant: Option<(u64, u32)>,
}

impl Span {
    fn latency(&self) -> Option<u64> {
        self.grant.map(|(at, _)| at.saturating_sub(self.start_at))
    }
}

/// Group the span events of a trace by request id. Panics on traces that
/// violate the span grammar (hop or grant without a start, double grant) —
/// those are runtime bugs this analyzer exists to catch.
fn reconstruct(records: &[TraceRecord]) -> Vec<Span> {
    let mut spans: BTreeMap<u64, Span> = BTreeMap::new();
    for r in records {
        match r.event {
            ProtocolEvent::RequestStart { req, mode, upgrade } => {
                let prev = spans.insert(
                    req,
                    Span {
                        req,
                        start_at: r.at,
                        start_node: r.node,
                        mode,
                        upgrade,
                        path: Vec::new(),
                        grant: None,
                    },
                );
                assert!(prev.is_none(), "request id {req:#x} opened twice");
            }
            ProtocolEvent::RequestHop { req, hop } => {
                let span = spans
                    .get_mut(&req)
                    .unwrap_or_else(|| panic!("hop for unopened request {req:#x}"));
                span.path.push((r.at, r.node, hop));
            }
            ProtocolEvent::RequestGrant { req, hops } => {
                let span = spans
                    .get_mut(&req)
                    .unwrap_or_else(|| panic!("grant for unopened request {req:#x}"));
                assert!(span.grant.is_none(), "request {req:#x} granted twice");
                span.grant = Some((r.at, hops));
            }
            _ => {}
        }
    }
    let mut out: Vec<Span> = spans.into_values().collect();
    out.sort_by_key(|s| s.start_at);
    out
}

/// Print distributions and exemplar critical paths.
fn report(spans: &[Span], show_paths: bool) {
    let completed: Vec<&Span> = spans.iter().filter(|s| s.grant.is_some()).collect();
    println!(
        "\n{} spans ({} completed, {} still open)",
        spans.len(),
        completed.len(),
        spans.len() - completed.len()
    );
    if completed.is_empty() {
        return;
    }

    let mut latency = Histogram::new();
    let mut hops = Histogram::new();
    for s in &completed {
        latency.record(s.latency().expect("completed"));
        hops.record(s.grant.expect("completed").1 as u64);
    }
    let lp = latency.percentiles();
    println!(
        "latency µs: p50 {} p95 {} p99 {} max {}",
        lp.p50,
        lp.p95,
        lp.p99,
        latency.max()
    );
    println!(
        "hops: mean {:.2} p50 {} p99 {} max {}",
        hops.mean(),
        hops.quantile(0.50),
        hops.quantile(0.99),
        hops.max()
    );

    if !show_paths {
        return;
    }
    // Exemplars: the longest chains are the interesting ones.
    let mut by_hops: Vec<&&Span> = completed.iter().collect();
    by_hops.sort_by_key(|s| std::cmp::Reverse(s.grant.expect("completed").1));
    println!("\nlongest critical paths:");
    for s in by_hops.iter().take(5) {
        let (grant_at, grant_hops) = s.grant.expect("completed");
        let mut path = format!("n{}", s.start_node);
        for (_, node, hop) in &s.path {
            path.push_str(&format!(" -[{hop}]-> n{node}"));
        }
        let tag = if s.upgrade { " upgrade" } else { "" };
        println!(
            "  req {:#x} {}{}: {} hops, {} µs  {}",
            s.req,
            s.mode,
            tag,
            grant_hops,
            grant_at.saturating_sub(s.start_at),
            path
        );
    }
}

/// Run a threaded cluster, dump the merged trace as JSONL, re-read it, and
/// assert every completed acquire reconstructs into a completed span.
fn capture(nodes: usize) -> Vec<TraceRecord> {
    let (records, expected) = run_cluster(nodes, 6);

    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("cluster{nodes}-trace.jsonl"));
    let file = File::create(&path).expect("create trace file");
    jsonl::write_jsonl(BufWriter::new(file), &records).expect("write trace");

    // Re-read from disk so the analysis exercises the parser as well.
    let back = jsonl::read_jsonl(BufReader::new(File::open(&path).expect("reopen")))
        .expect("trace file round-trips");
    assert_eq!(back, records, "JSONL round-trip is lossless");

    let grants = back
        .iter()
        .filter(|r| matches!(r.event, ProtocolEvent::RequestGrant { .. }))
        .count() as u64;
    assert_eq!(
        grants, expected,
        "every completed acquire must close its span in the trace"
    );
    println!(
        "captured {} records ({} completed acquires) from {} nodes -> {}",
        back.len(),
        grants,
        nodes,
        path.display()
    );
    back
}

/// Drive `ops` rounds of the two-level table/entry pattern on every node of
/// an `n`-node cluster; returns the merged trace and the number of acquires
/// performed (all of which complete).
fn run_cluster(nodes: usize, ops: u32) -> (Vec<TraceRecord>, u64) {
    let c = Cluster::new(ClusterConfig {
        nodes,
        locks: 3,
        trace_capacity: 1 << 16,
        ..Default::default()
    });
    let threads: Vec<_> = (0..nodes as u32)
        .map(|i| {
            let h = c.handle(i);
            std::thread::spawn(move || {
                // Simple per-node LCG so nodes spread over both entries
                // without sharing a seed source.
                let mut state = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..ops {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let entry = (state >> 33) % 2;
                    h.acquire(LockId::TABLE, Mode::IntentWrite).unwrap();
                    h.acquire(LockId::entry(entry as u32), Mode::Write).unwrap();
                    h.release(LockId::entry(entry as u32)).unwrap();
                    h.release(LockId::TABLE).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    c.quiesce(Duration::from_millis(20));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    assert_eq!(report.trace_dropped, 0, "trace capacity covers the run");
    let expected = (nodes as u64) * (ops as u64) * 2;
    assert_eq!(report.acquire_latency.count(), expected);
    (report.trace, expected)
}

/// The EXPERIMENTS.md table: hops per acquire vs log₂(n), with tail
/// latencies, for n ∈ {4, 16, 64}.
fn sweep() {
    println!(
        "{:>5} {:>8} {:>10} {:>9} {:>9} {:>9} {:>12} {:>12} {:>12}",
        "n",
        "log2(n)",
        "acquires",
        "hops-mean",
        "hops-p99",
        "hops-max",
        "lat-p50-µs",
        "lat-p95-µs",
        "lat-p99-µs"
    );
    for &nodes in &[4usize, 16, 64] {
        let ops = if nodes >= 64 { 4 } else { 6 };
        let (records, expected) = run_cluster(nodes, ops);
        let spans = reconstruct(&records);
        let completed: Vec<&Span> = spans.iter().filter(|s| s.grant.is_some()).collect();
        assert_eq!(completed.len() as u64, expected);
        let mut latency = Histogram::new();
        let mut hops = Histogram::new();
        for s in &completed {
            latency.record(s.latency().expect("completed"));
            hops.record(s.grant.expect("completed").1 as u64);
        }
        let lp = latency.percentiles();
        println!(
            "{:>5} {:>8.2} {:>10} {:>9.2} {:>9} {:>9} {:>12} {:>12} {:>12}",
            nodes,
            (nodes as f64).log2(),
            completed.len(),
            hops.mean(),
            hops.quantile(0.99),
            hops.max(),
            lp.p50,
            lp.p95,
            lp.p99
        );
    }
}
