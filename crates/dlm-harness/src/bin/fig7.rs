//! Regenerate Figure 7 (message overhead vs. nodes, three protocols).

use dlm_harness::{fig7, render_table, write_tsv, FigureOptions};

fn main() {
    let fig = fig7(&FigureOptions::default());
    print!("{}", render_table(&fig));
    let path = write_tsv(&fig, std::path::Path::new("results")).expect("write tsv");
    eprintln!("wrote {}", path.display());
}
