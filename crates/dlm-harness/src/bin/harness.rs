//! `dlm-harness` — the multi-process cluster driver: spawns one `dlm-node`
//! process per member on loopback sockets, drives the paper's workloads
//! through them, waits for global quiescence, shuts every member down,
//! and audits the reassembled cross-process state.
//!
//! Re-measures the evaluation end to end **over a real wire**: the
//! Figure 7/8 Linux-cluster workload, the Figure 9/10 IBM-SP workloads
//! (idle:CS ratios 25 and 1), and the shard-churn partitioned workload,
//! all over TCP (or UDP with `--udp <loss>`). Think times are compressed
//! by `--scale` (default 100) so the full suite runs in seconds; the
//! think-to-CS ratio — what the figures vary — is preserved.
//!
//! ```text
//! dlm-harness [--nodes 4] [--scale 100] [--shards 1] [--udp <loss>]
//!             [--out results] [--smoke] [--crash-smoke <seed>]
//! ```
//!
//! `--smoke` runs a bounded 3-process TCP sanity check (tiny workload,
//! hard deadline, non-zero exit on any audit error) for CI.
//! `--crash-smoke <seed>` runs the bounded crash-recovery check: a
//! 3-process TCP cluster, a seed-chosen member holding the table token is
//! SIGKILLed, the survivors' failure detectors must flag it, the driver
//! choreographs the scan/plan/repair wave, and the run fails unless Write
//! service resumes with exactly one token in the new epoch and a clean
//! survivor audit.

use dlm_cluster::{audit_process_states, audit_surviving_states, plan_recovery, ScanReport};
use dlm_core::{HierNode, ProtocolConfig};
use dlm_harness::sockload::hex_decode;
use dlm_metrics::Histogram;
use dlm_workload::{ProtocolKind, WorkloadParams};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::{Duration, Instant};

struct Args {
    nodes: usize,
    scale: u64,
    shards: usize,
    udp: Option<f64>,
    out: String,
    smoke: bool,
    crash_smoke: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 4,
        scale: 100,
        shards: 1,
        udp: None,
        out: "results".into(),
        smoke: false,
        crash_smoke: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().expect("flag value");
        match flag.as_str() {
            "--nodes" => args.nodes = value().parse().expect("--nodes"),
            "--scale" => args.scale = value().parse().expect("--scale"),
            "--shards" => args.shards = value().parse().expect("--shards"),
            "--udp" => args.udp = Some(value().parse().expect("--udp")),
            "--out" => args.out = value(),
            "--smoke" => args.smoke = true,
            "--crash-smoke" => args.crash_smoke = Some(value().parse().expect("--crash-smoke")),
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    assert!(args.nodes >= 2, "a cluster needs at least two members");
    args
}

/// One spawned `dlm-node` with a line-oriented reader thread, so every
/// read is deadline-bounded (a hung member must not hang the driver).
struct Member {
    child: Child,
    stdin: ChildStdin,
    lines: crossbeam::channel::Receiver<String>,
}

struct Cluster {
    members: Vec<Member>,
    deadline: Instant,
}

impl Cluster {
    /// Reserve loopback ports, spawn one `dlm-node` per member, and wait
    /// for every member's `ready`.
    fn spawn(
        nodes: usize,
        locks: usize,
        shards: usize,
        udp: Option<f64>,
        deadline: Instant,
    ) -> Cluster {
        let addrs: Vec<SocketAddr> = if udp.is_some() {
            (0..nodes)
                .map(|_| {
                    UdpSocket::bind("127.0.0.1:0")
                        .expect("reserve udp port")
                        .local_addr()
                        .expect("local addr")
                })
                .collect()
        } else {
            (0..nodes)
                .map(|_| {
                    TcpListener::bind("127.0.0.1:0")
                        .expect("reserve tcp port")
                        .local_addr()
                        .expect("local addr")
                })
                .collect()
        };
        let addr_list = addrs
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let exe = std::env::current_exe()
            .expect("current exe")
            .parent()
            .expect("exe dir")
            .join("dlm-node");
        let members = (0..nodes)
            .map(|me| {
                let mut cmd = Command::new(&exe);
                cmd.arg("--me")
                    .arg(me.to_string())
                    .arg("--addrs")
                    .arg(&addr_list)
                    .arg("--locks")
                    .arg(locks.to_string())
                    .arg("--shards")
                    .arg(shards.to_string())
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped());
                if let Some(loss) = udp {
                    cmd.arg("--udp")
                        .arg(format!("{loss},{}", 0x5EED + me as u64));
                }
                let mut child = cmd.spawn().unwrap_or_else(|e| {
                    panic!(
                        "spawn {}: {e} (build the dlm-node binary first)",
                        exe.display()
                    )
                });
                let stdin = child.stdin.take().expect("child stdin");
                let stdout = child.stdout.take().expect("child stdout");
                let (tx, lines) = crossbeam::channel::unbounded();
                std::thread::spawn(move || {
                    use std::io::BufRead;
                    for line in std::io::BufReader::new(stdout).lines() {
                        let Ok(line) = line else { break };
                        if tx.send(line).is_err() {
                            break;
                        }
                    }
                });
                Member {
                    child,
                    stdin,
                    lines,
                }
            })
            .collect();
        let mut cluster = Cluster { members, deadline };
        for me in 0..nodes {
            let line = cluster.recv(me);
            if line != "ready" {
                cluster.fail(&format!("member {me}: expected ready, got {line:?}"));
            }
        }
        cluster
    }

    fn send(&mut self, me: usize, command: &str) {
        if writeln!(self.members[me].stdin, "{command}").is_err() {
            self.fail(&format!("member {me}: stdin closed"));
        }
    }

    fn recv(&mut self, me: usize) -> String {
        let remaining = self
            .deadline
            .checked_duration_since(Instant::now())
            .unwrap_or(Duration::ZERO);
        match self.members[me].lines.recv_timeout(remaining) {
            Ok(line) => line,
            Err(_) => self.fail(&format!("member {me}: no output before the deadline")),
        }
    }

    /// Kill every member and abort: the bounded-deadline escape hatch.
    fn fail(&mut self, message: &str) -> ! {
        for m in &mut self.members {
            let _ = m.child.kill();
        }
        eprintln!("dlm-harness: {message}");
        std::process::exit(1);
    }

    fn len(&self) -> usize {
        self.members.len()
    }
}

/// Everything one workload run produced, cluster-wide.
struct RunStats {
    wall: Duration,
    ops: u64,
    acquires: u64,
    messages: u64,
    latency: Histogram,
    retransmits: u64,
    dropped: u64,
    wire_bytes: u64,
    resets: u64,
    decode_errors: u64,
    audit_errors: usize,
}

/// Drive one already-spawned cluster through one workload command, then
/// quiesce, shut down, and audit.
fn drive(mut cluster: Cluster, command: &str, protocol: ProtocolConfig) -> RunStats {
    let n = cluster.len();
    let start = Instant::now();
    for me in 0..n {
        cluster.send(me, command);
    }
    let mut ops = 0u64;
    let mut acquires = 0u64;
    for me in 0..n {
        let line = cluster.recv(me);
        let nums: Vec<u64> = line
            .strip_prefix("done ")
            .unwrap_or_else(|| cluster.fail(&format!("member {me}: expected done, got {line:?}")))
            .split_whitespace()
            .map(|w| w.parse().expect("done counts"))
            .collect();
        ops += nums[0];
        acquires += nums[1];
    }
    let wall = start.elapsed();

    // Global quiescence: every member simultaneously idle, message sum
    // stable across two consecutive polls.
    let mut last_sum = u64::MAX;
    loop {
        let mut all_idle = true;
        let mut sum = 0u64;
        for me in 0..n {
            cluster.send(me, "idle?");
            let line = cluster.recv(me);
            let (state, count) = line.split_once(' ').unwrap_or(("busy", "0"));
            all_idle &= state == "idle";
            sum += count.parse::<u64>().unwrap_or(0);
        }
        if all_idle && sum == last_sum {
            break;
        }
        last_sum = sum;
        if Instant::now() >= cluster.deadline {
            cluster.fail("cluster never reached global quiescence");
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shutdown: collect every member's latency histogram, final states,
    // and link counters, then reassemble the cross-process audit.
    let mut stats = RunStats {
        wall,
        ops,
        acquires,
        messages: 0,
        latency: Histogram::new(),
        retransmits: 0,
        dropped: 0,
        wire_bytes: 0,
        resets: 0,
        decode_errors: 0,
        audit_errors: 0,
    };
    let mut all_states: Vec<Vec<(u32, HierNode)>> = Vec::with_capacity(n);
    for me in 0..n {
        cluster.send(me, "shutdown");
        let mut states = Vec::new();
        loop {
            let line = cluster.recv(me);
            let mut words = line.split_whitespace();
            match words.next() {
                Some("lat") => {
                    let compact = words.next().unwrap_or("");
                    match Histogram::decode_compact(compact) {
                        Ok(h) => stats.latency.merge(&h),
                        Err(e) => cluster.fail(&format!("member {me}: bad histogram: {e}")),
                    }
                }
                Some("state") => {
                    let lock: u32 = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
                    let hex = words.next().unwrap_or("");
                    let Some(bytes) = hex_decode(hex) else {
                        cluster.fail(&format!("member {me}: undecodable state hex"));
                    };
                    let Some(node) = HierNode::decode_state(&bytes, protocol) else {
                        cluster.fail(&format!("member {me}: undecodable state for lock {lock}"));
                    };
                    states.push((lock, node));
                }
                Some("link") => {
                    let nums: Vec<u64> = words.map(|w| w.parse().expect("link counters")).collect();
                    // from to retransmits dropped wire_bytes resets proto wire
                    stats.retransmits += nums[2];
                    stats.dropped += nums[3];
                    stats.wire_bytes += nums[4];
                    stats.resets += nums[5];
                }
                Some("exit") => {
                    let nums: Vec<u64> = words.map(|w| w.parse().expect("exit counters")).collect();
                    stats.messages += nums[0];
                    stats.decode_errors += nums[1];
                    break;
                }
                _ => cluster.fail(&format!("member {me}: unexpected line {line:?}")),
            }
        }
        all_states.push(states);
    }
    // Link counters are double-observed (each endpoint reports its side);
    // wire totals were summed over both, so halve the symmetric ones.
    stats.wire_bytes /= 2;
    for m in &mut cluster.members {
        let _ = m.child.wait();
    }
    let errors = audit_process_states(protocol, &all_states);
    if !errors.is_empty() {
        eprintln!("audit errors: {errors:?}");
    }
    stats.audit_errors = errors.len();
    stats
}

struct FigureRow {
    name: String,
    stats: RunStats,
}

fn run_workload_figure(
    name: String,
    params: &WorkloadParams,
    args: &Args,
    budget: Duration,
) -> FigureRow {
    let cluster = Cluster::spawn(
        params.nodes,
        params.lock_count(),
        args.shards,
        args.udp,
        Instant::now() + budget,
    );
    let command = format!(
        "run {} {} {} {} {} {} {}",
        params.entries,
        params.cs_mean,
        params.idle_mean,
        params.ops_per_node,
        params.seed,
        args.scale,
        params.hot_entry_percent
    );
    let stats = drive(cluster, &command, params.hier_config);
    FigureRow { name, stats }
}

/// The `--crash-smoke` run: SIGKILL a token-holding member of a 3-process
/// TCP cluster and drive the recovery protocol end to end from the
/// outside, exactly as an operator (or supervisor) would: poll the
/// survivors' failure detectors, scan, plan centrally, broadcast the
/// repair wave, and verify restored service plus a clean reassembled
/// audit. Exits non-zero on any failure.
fn crash_smoke(seed: u64, args: &Args) {
    let nodes = 3usize;
    let locks = 1usize;
    let protocol = ProtocolConfig::paper();
    // Seeded victim among the non-zero members; it pulls the table token
    // with a held Write so its death forces R2 token regeneration.
    let victim = 1 + (seed % (nodes as u64 - 1)) as usize;
    let survivors: Vec<u32> = (0..nodes as u32).filter(|&n| n != victim as u32).collect();
    let surv_csv = survivors
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");

    let mut cluster = Cluster::spawn(
        nodes,
        locks,
        args.shards,
        args.udp,
        Instant::now() + Duration::from_secs(60),
    );
    cluster.send(victim, "acquire 0 w");
    let line = cluster.recv(victim);
    if line != "ok" {
        cluster.fail(&format!("victim acquire: expected ok, got {line:?}"));
    }

    let killed_at = Instant::now();
    let _ = cluster.members[victim].child.kill();
    let _ = cluster.members[victim].child.wait();

    // Failure detection: every survivor's socket detector must flag the
    // victim (its connections died with the process).
    loop {
        let mut all_saw = true;
        for &s in &survivors {
            cluster.send(s as usize, "suspects");
            let line = cluster.recv(s as usize);
            let flagged = line
                .strip_prefix("suspects")
                .map(|rest| {
                    rest.split_whitespace()
                        .any(|w| w.parse::<u32>() == Ok(victim as u32))
                })
                .unwrap_or(false);
            all_saw &= flagged;
        }
        if all_saw {
            break;
        }
        if Instant::now() >= cluster.deadline {
            cluster.fail("survivors never suspected the killed member");
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Scan → plan → repair: the driver is the recovery coordinator.
    let mut rows: Vec<ScanReport> = Vec::new();
    for &s in &survivors {
        cluster.send(s as usize, "scan");
        let line = cluster.recv(s as usize);
        let Some(body) = line.strip_prefix("locks") else {
            cluster.fail(&format!("member {s}: expected locks, got {line:?}"));
        };
        let locks_row: Vec<(u32, bool, u32)> = body
            .split_whitespace()
            .map(|item| {
                let mut it = item.split(':');
                let lock: u32 = it.next().and_then(|w| w.parse().ok()).expect("scan lock");
                let has: u32 = it.next().and_then(|w| w.parse().ok()).expect("scan token");
                let epoch: u32 = it.next().and_then(|w| w.parse().ok()).expect("scan epoch");
                (lock, has != 0, epoch)
            })
            .collect();
        rows.push((s, locks_row));
    }
    let plans = plan_recovery(&rows, victim as u32, &survivors, locks);
    if plans.is_empty() {
        cluster.fail("the dead holder's lock was not planned for repair");
    }
    let plans_csv = plans
        .iter()
        .map(|(l, r, e)| format!("{l}:{r}:{e}"))
        .collect::<Vec<_>>()
        .join(",");
    for &s in &survivors {
        cluster.send(
            s as usize,
            &format!("repair {victim} {surv_csv} {plans_csv}"),
        );
        let line = cluster.recv(s as usize);
        if line != "ok" {
            cluster.fail(&format!("member {s}: repair failed: {line:?}"));
        }
    }

    // Restored service: every survivor write-cycles the repaired lock.
    for &s in &survivors {
        for command in ["acquire 0 w", "release 0"] {
            cluster.send(s as usize, command);
            let line = cluster.recv(s as usize);
            if line != "ok" {
                cluster.fail(&format!("member {s}: {command}: {line:?}"));
            }
        }
    }
    let recovery_ms = killed_at.elapsed().as_millis();

    // Exactly one token across the survivors, in the regenerated epoch.
    let mut tokens: Vec<(u32, u32, u32)> = Vec::new();
    for &s in &survivors {
        cluster.send(s as usize, "scan");
        let line = cluster.recv(s as usize);
        for item in line.strip_prefix("locks").unwrap_or("").split_whitespace() {
            let mut it = item.split(':');
            let lock: u32 = it.next().and_then(|w| w.parse().ok()).expect("scan lock");
            let has: u32 = it.next().and_then(|w| w.parse().ok()).expect("scan token");
            let epoch: u32 = it.next().and_then(|w| w.parse().ok()).expect("scan epoch");
            if has != 0 {
                tokens.push((s, lock, epoch));
            }
        }
    }
    if tokens.len() != 1 || tokens[0].2 < 1 {
        cluster.fail(&format!("expected one token in epoch >= 1, got {tokens:?}"));
    }

    // Global quiescence over the survivors, then shutdown + audit.
    let mut last_sum = u64::MAX;
    loop {
        let mut all_idle = true;
        let mut sum = 0u64;
        for &s in &survivors {
            cluster.send(s as usize, "idle?");
            let line = cluster.recv(s as usize);
            let (state, count) = line.split_once(' ').unwrap_or(("busy", "0"));
            all_idle &= state == "idle";
            sum += count.parse::<u64>().unwrap_or(0);
        }
        if all_idle && sum == last_sum {
            break;
        }
        last_sum = sum;
        if Instant::now() >= cluster.deadline {
            cluster.fail("survivors never reached quiescence");
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut all_states: Vec<Vec<(u32, HierNode)>> = vec![Vec::new(); nodes];
    let mut decode_errors = 0u64;
    let mut replies_dropped = 0u64;
    for &s in &survivors {
        cluster.send(s as usize, "shutdown");
        loop {
            let line = cluster.recv(s as usize);
            let mut words = line.split_whitespace();
            match words.next() {
                Some("lat") | Some("link") => {}
                Some("state") => {
                    let lock: u32 = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
                    let hex = words.next().unwrap_or("");
                    let Some(bytes) = hex_decode(hex) else {
                        cluster.fail(&format!("member {s}: undecodable state hex"));
                    };
                    let Some(node) = HierNode::decode_state(&bytes, protocol) else {
                        cluster.fail(&format!("member {s}: undecodable state for lock {lock}"));
                    };
                    all_states[s as usize].push((lock, node));
                }
                Some("exit") => {
                    let nums: Vec<u64> = words.map(|w| w.parse().expect("exit counters")).collect();
                    decode_errors += nums[1];
                    replies_dropped += nums[2];
                    break;
                }
                _ => cluster.fail(&format!("member {s}: unexpected line {line:?}")),
            }
        }
    }
    for m in &mut cluster.members {
        let _ = m.child.wait();
    }
    let errors = audit_surviving_states(protocol, &all_states, &[victim as u32]);
    assert!(errors.is_empty(), "crash-smoke audit: {errors:?}");
    assert_eq!(decode_errors, 0, "crash-smoke saw malformed frames");
    assert_eq!(replies_dropped, 0, "crash-smoke dropped a reply");
    println!(
        "crash-smoke ok: seed {seed} killed member {victim}, {} survivors recovered \
         to epoch {} in {recovery_ms} ms (one token at member {})",
        survivors.len(),
        tokens[0].2,
        tokens[0].0
    );
}

fn main() {
    let args = parse_args();

    if let Some(seed) = args.crash_smoke {
        crash_smoke(seed, &args);
        return;
    }
    if args.smoke {
        // CI sanity check: 3 processes, tiny Figure-7 workload, hard
        // deadline, loud non-zero exit on any audit or decode error.
        let mut params = WorkloadParams::linux_cluster(3, ProtocolKind::Hier);
        params.ops_per_node = 5;
        let row = run_workload_figure("smoke".into(), &params, &args, Duration::from_secs(60));
        assert_eq!(row.stats.audit_errors, 0, "smoke audit failed");
        assert_eq!(row.stats.decode_errors, 0, "smoke saw malformed frames");
        assert_eq!(row.stats.ops, 3 * 5);
        println!(
            "smoke ok: {} ops, {} msgs, {} wire bytes over 3 processes in {:?}",
            row.stats.ops, row.stats.messages, row.stats.wire_bytes, row.stats.wall
        );
        return;
    }

    let nodes = args.nodes;
    let budget = Duration::from_secs(120);
    let wire = if args.udp.is_some() { "udp" } else { "tcp" };
    let mut rows = Vec::new();

    // Figures 7 and 8 share the §4.1 Linux-cluster workload: one run,
    // two readings (latency and messages-per-request).
    let fig7 = WorkloadParams::linux_cluster(nodes, ProtocolKind::Hier);
    rows.push(run_workload_figure(
        format!("fig7_{wire}"),
        &fig7,
        &args,
        budget,
    ));
    // Figures 9 and 10: the §4.2 IBM-SP workload at idle:CS ratios 25 and 1.
    let fig9 = WorkloadParams::ibm_sp(nodes, 25);
    rows.push(run_workload_figure(
        format!("fig9_{wire}"),
        &fig9,
        &args,
        budget,
    ));
    let fig10 = WorkloadParams::ibm_sp(nodes, 1);
    rows.push(run_workload_figure(
        format!("fig10_{wire}"),
        &fig10,
        &args,
        budget,
    ));
    // Shard churn: each member hammers its own entry lock (locks = one
    // entry per member + the table), measuring the partitioned fast path.
    let churn_cluster = Cluster::spawn(
        nodes,
        nodes + 1,
        args.shards,
        args.udp,
        Instant::now() + budget,
    );
    let churn_stats = drive(churn_cluster, "churn 500", ProtocolConfig::paper());
    rows.push(FigureRow {
        name: format!("shard_churn_{wire}"),
        stats: churn_stats,
    });

    println!(
        "socket cluster figures — {nodes} processes over {wire} loopback, think times ÷{}",
        args.scale
    );
    println!(
        "{:<16} {:>8} {:>10} {:>12} {:>12} {:>10} {:>12} {:>8} {:>7}",
        "figure",
        "ops",
        "msgs/op",
        "lat p50 µs",
        "lat p95 µs",
        "wall ms",
        "wire bytes",
        "rexmit",
        "audit"
    );
    for row in &rows {
        let s = &row.stats;
        println!(
            "{:<16} {:>8} {:>10.2} {:>12} {:>12} {:>10} {:>12} {:>8} {:>7}",
            row.name,
            s.ops,
            s.messages as f64 / s.acquires.max(1) as f64,
            s.latency.quantile(0.50),
            s.latency.quantile(0.95),
            s.wall.as_millis(),
            s.wire_bytes,
            s.retransmits,
            if s.audit_errors == 0 { "clean" } else { "FAIL" }
        );
    }

    std::fs::create_dir_all(&args.out).expect("results dir");
    let path = std::path::Path::new(&args.out).join(format!("socket_figures_{wire}.tsv"));
    let mut f = std::fs::File::create(&path).expect("tsv file");
    writeln!(
        f,
        "figure\tnodes\tops\tacquires\tmessages\tmsgs_per_acquire\tlat_p50_us\tlat_p95_us\tlat_mean_us\twall_ms\twire_bytes\tretransmits\tdropped\tresets\taudit_errors"
    )
    .expect("tsv header");
    for row in &rows {
        let s = &row.stats;
        writeln!(
            f,
            "{}\t{}\t{}\t{}\t{}\t{:.3}\t{}\t{}\t{:.1}\t{}\t{}\t{}\t{}\t{}\t{}",
            row.name,
            nodes,
            s.ops,
            s.acquires,
            s.messages,
            s.messages as f64 / s.acquires.max(1) as f64,
            s.latency.quantile(0.50),
            s.latency.quantile(0.95),
            s.latency.mean(),
            s.wall.as_millis(),
            s.wire_bytes,
            s.retransmits,
            s.dropped,
            s.resets,
            s.audit_errors
        )
        .expect("tsv row");
    }
    println!("wrote {}", path.display());

    let failed: Vec<&str> = rows
        .iter()
        .filter(|r| r.stats.audit_errors > 0 || r.stats.decode_errors > 0)
        .map(|r| r.name.as_str())
        .collect();
    if !failed.is_empty() {
        eprintln!("failed figures: {failed:?}");
        std::process::exit(1);
    }
}
