//! Structured-trace analyzer: per-rule breakdowns, per-lock causal chains,
//! queue-depth and freeze-span extremes from a JSONL protocol trace.
//!
//! * `events <trace.jsonl>` — analyze an existing trace file.
//! * `events [nodes]` — capture a fresh trace from the Fig. 7 workload
//!   (hierarchical protocol, linux-cluster parameters, default 16 nodes),
//!   write it to `results/fig7-trace.jsonl`, re-read it from disk, analyze
//!   it, and verify the 1:1 send contract: the trace's send-class totals
//!   must sum to exactly the workload report's message count.
//!
//! Run with: `cargo run -p dlm-harness --bin events [-- <trace.jsonl>|<nodes>]`

use dlm_trace::{jsonl, ProtocolEvent, Recorder, TraceRecord, TraceStats, VecRecorder};
use dlm_workload::{run_workload_traced, ProtocolKind, WorkloadParams};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::rc::Rc;

fn main() {
    let arg = std::env::args().nth(1);
    let records = match arg.as_deref() {
        Some(path) if !path.chars().all(|c| c.is_ascii_digit()) => {
            let file = File::open(path).unwrap_or_else(|e| panic!("open {path}: {e}"));
            let records = jsonl::read_jsonl(BufReader::new(file))
                .unwrap_or_else(|e| panic!("parse {path}: {e}"));
            println!("loaded {} records from {path}", records.len());
            records
        }
        nodes => capture(nodes.and_then(|s| s.parse().ok()).unwrap_or(16)),
    };
    analyze(&records);
}

/// Run the Fig. 7 hierarchical workload with a full recorder attached,
/// round-trip the trace through the JSONL file format, and check the
/// send-event totals against the report's message counter.
fn capture(nodes: usize) -> Vec<TraceRecord> {
    let params = WorkloadParams::linux_cluster(nodes, ProtocolKind::Hier);
    let rec: Rc<RefCell<VecRecorder>> = Rc::new(RefCell::new(VecRecorder::new()));
    let report = run_workload_traced(&params, Some(Rc::clone(&rec) as Rc<RefCell<dyn Recorder>>));
    assert!(report.complete(), "workload must complete");
    let records = rec.borrow().records.clone();

    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("fig7-trace.jsonl");
    let file = File::create(&path).expect("create trace file");
    jsonl::write_jsonl(BufWriter::new(file), &records).expect("write trace");

    // Re-read from disk so the analysis below exercises the parser too.
    let back = jsonl::read_jsonl(BufReader::new(File::open(&path).expect("reopen")))
        .expect("trace file round-trips");
    assert_eq!(back, records, "JSONL round-trip is lossless");

    let sends = back
        .iter()
        .filter(|r| r.event.send_class().is_some())
        .count() as u64;
    assert_eq!(
        sends, report.messages,
        "send-class events must equal the report's message count"
    );
    println!(
        "captured {} records ({} sends = report messages) from {} nodes -> {}",
        back.len(),
        sends,
        nodes,
        path.display()
    );
    back
}

fn analyze(records: &[TraceRecord]) {
    let mut stats = TraceStats::new();
    for r in records {
        stats.absorb(r);
    }

    println!("\nper-rule breakdown:");
    for (rule, count) in stats.rules.iter() {
        println!("  {rule:24} {count:>8}");
    }

    println!("\nsend-class events (1:1 with wire messages):");
    for (class, count) in stats.sends.iter() {
        println!("  {class:10} {count:>8}");
    }
    println!("  {:10} {:>8}", "total", stats.total_sends());

    if stats.queue_depth.count() > 0 {
        println!(
            "\nqueue depth: max {} (mean {:.2} over {} insertions)",
            stats.queue_depth.max(),
            stats.queue_depth.mean(),
            stats.queue_depth.count()
        );
    }
    if stats.freeze_spans.count() > 0 {
        println!(
            "freeze spans: max {} (mean {:.1} over {} freezes)",
            stats.freeze_spans.max(),
            stats.freeze_spans.mean(),
            stats.freeze_spans.count()
        );
    }

    // Transport-reliability events (cluster traces only: frame drops,
    // retransmissions, duplicate suppression, malformed frames).
    let reliability: Vec<(&str, u64)> = stats
        .kinds
        .iter()
        .filter(|(k, _)| {
            matches!(
                *k,
                "frame_dropped" | "retransmit" | "dup_suppressed" | "decode_error"
            )
        })
        .collect();
    if !reliability.is_empty() {
        println!("\ntransport reliability events:");
        for (kind, count) in reliability {
            println!("  {kind:16} {count:>8}");
        }
    }

    // Request spans (start → grant pairs), when the trace carries them.
    if stats.span_latency.count() > 0 {
        let lat = stats.span_latency.percentiles();
        println!(
            "\nrequest spans: {} completed; latency µs p50 {} p95 {} p99 {} max {}",
            stats.span_latency.count(),
            lat.p50,
            lat.p95,
            lat.p99,
            stats.span_latency.max()
        );
        println!(
            "               hops mean {:.2} p99 {} max {}",
            stats.span_hops.mean(),
            stats.span_hops.quantile(0.99),
            stats.span_hops.max()
        );
    }

    chains(records);
}

/// For each lock (most active first), follow one exemplar request from its
/// `request_sent` to the grant that answered it.
fn chains(records: &[TraceRecord]) {
    let mut by_lock: BTreeMap<u32, Vec<&TraceRecord>> = BTreeMap::new();
    for r in records {
        by_lock.entry(r.lock).or_default().push(r);
    }
    let mut locks: Vec<(u32, Vec<&TraceRecord>)> = by_lock.into_iter().collect();
    locks.sort_by_key(|(_, v)| std::cmp::Reverse(v.len()));

    println!("\nper-lock causal chains (one exemplar request each):");
    for (lock, recs) in locks.iter().take(8) {
        let Some(start) = recs
            .iter()
            .position(|r| matches!(r.event, ProtocolEvent::RequestSent { .. }))
        else {
            println!("  lock {lock}: {} events, no remote request", recs.len());
            continue;
        };
        let requester = recs[start].node;
        let mut chain = vec![recs[start]];
        for r in &recs[start + 1..] {
            if r.node != requester && r.event.peer() != Some(requester) {
                continue;
            }
            chain.push(r);
            let done = r.node == requester
                && matches!(
                    r.event,
                    ProtocolEvent::GrantReceived { .. }
                        | ProtocolEvent::TokenReceived { .. }
                        | ProtocolEvent::LocalGrant { .. }
                );
            if done {
                break;
            }
        }
        let span = chain.last().expect("nonempty").at - chain[0].at;
        let shown = chain.len().min(10);
        let rendered: Vec<String> = chain[..shown]
            .iter()
            .map(|r| format!("n{}:{}", r.node, r.event.kind()))
            .collect();
        let ellipsis = if chain.len() > shown { " …" } else { "" };
        println!(
            "  lock {lock} ({} events): {}{} [span {span}]",
            recs.len(),
            rendered.join(" -> "),
            ellipsis
        );
    }
}
