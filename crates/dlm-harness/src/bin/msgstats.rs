//! Diagnostic: per-kind message breakdown for each protocol at a given node
//! count (default 32), plus a per-link reliability section from a lossy
//! threaded-cluster run. Usage: `msgstats [nodes]`.

use dlm_cluster::{
    Cluster, ClusterConfig, FaultConfig, LockId as ClusterLockId, Mode, ReliableConfig,
    TransportKind,
};
use dlm_workload::{run_workload, ProtocolKind, WorkloadParams};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    for proto in [
        ProtocolKind::Hier,
        ProtocolKind::NaimiPure,
        ProtocolKind::NaimiSameWork,
    ] {
        let params = WorkloadParams::linux_cluster(nodes, proto);
        let report = run_workload(&params);
        println!(
            "{:16} nodes={} ops={}/{} requests={} messages={} msgs/req={:.3} mean-wait={:.1}ms",
            proto.label(),
            nodes,
            report.ops_completed,
            report.ops_expected,
            report.requests,
            report.messages,
            report.messages_per_request(),
            report.op_latency.mean() / 1000.0,
        );
        for (kind, count) in report.sent_by_kind.iter() {
            println!(
                "    {:10} {:>8}  ({:.3}/req)",
                kind,
                count,
                count as f64 / report.requests as f64
            );
        }
        // Structured-trace view: how often each paper rule fired (empty for
        // the Naimi series, which is not instrumented).
        if report.rule_counters.total() > 0 {
            println!(
                "  rule firings (trace sends {} = messages {}):",
                report.trace_sends.total(),
                report.messages,
            );
            for (rule, count) in report.rule_counters.iter() {
                println!(
                    "    {:24} {:>8}  ({:.3}/req)",
                    rule,
                    count,
                    count as f64 / report.requests as f64
                );
            }
        }
    }
    cluster_link_stats();
}

/// Drive a small lossy cluster (reliable delivery over 5 % frame loss) and
/// print the per-link reliability counters plus the acquire-latency/hop
/// distributions the node threads measured.
fn cluster_link_stats() {
    const NODES: usize = 4;
    let c = Cluster::new(ClusterConfig {
        nodes: NODES,
        locks: 2,
        transport: TransportKind::Faulty(FaultConfig {
            seed: 7,
            drop: 0.05,
            ..Default::default()
        }),
        reliable: Some(ReliableConfig::default()),
        ..Default::default()
    });
    let threads: Vec<_> = (0..NODES as u32)
        .map(|i| {
            let h = c.handle(i);
            std::thread::spawn(move || {
                for _ in 0..8 {
                    h.acquire(ClusterLockId::TABLE, Mode::IntentWrite).unwrap();
                    h.acquire(ClusterLockId::entry(0), Mode::Write).unwrap();
                    h.release(ClusterLockId::entry(0)).unwrap();
                    h.release(ClusterLockId::TABLE).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    c.quiesce(std::time::Duration::from_millis(50));
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);

    println!(
        "\ncluster ({NODES} nodes, 5% frame loss, reliable links): {} messages",
        report.messages_sent
    );
    let lat = report.acquire_latency.percentiles();
    println!(
        "  acquire latency µs: p50 {} p95 {} p99 {} max {}  ({} ops)",
        lat.p50,
        lat.p95,
        lat.p99,
        report.acquire_latency.max(),
        report.acquire_latency.count()
    );
    println!(
        "  acquire hops: mean {:.2} max {}",
        report.acquire_hops.mean(),
        report.acquire_hops.max()
    );
    println!(
        "  {:>4} {:>4} {:>10} {:>8} {:>10} {:>8} {:>9} {:>8} {:>7} {:>6} {:>6}",
        "from",
        "to",
        "data_sent",
        "retrans",
        "acks_sent",
        "dups",
        "reorders",
        "dropped",
        "proto",
        "wire",
        "pack"
    );
    for l in &report.links {
        // Idle links (no data, nothing dropped) would drown the table.
        if l.data_sent == 0 && l.dropped == 0 {
            continue;
        }
        // Coalescing ratio: protocol frames per physical wire frame (1.00
        // with coalescing off or when nothing shared a drain cycle).
        let pack = if l.wire_sent > 0 {
            l.proto_sent as f64 / l.wire_sent as f64
        } else {
            1.0
        };
        println!(
            "  {:>4} {:>4} {:>10} {:>8} {:>10} {:>8} {:>9} {:>8} {:>7} {:>6} {:>6.2}",
            l.from,
            l.to,
            l.data_sent,
            l.retransmits,
            l.acks_sent,
            l.dups_suppressed,
            l.reorders_buffered,
            l.dropped,
            l.proto_sent,
            l.wire_sent,
            pack,
        );
    }

    // Per-shard view of the same run from the Prometheus snapshot: queue
    // depths are zero at rest, the ops counters show how the shard hash
    // spread this workload's two locks across workers.
    let snapshot = c2_shard_section();
    print!("{snapshot}");
}

/// Drive a short churn on a 2-node, 4-shard cluster and return the
/// `dlm_shard_*` section of its metrics snapshot.
fn c2_shard_section() -> String {
    let c = Cluster::new(ClusterConfig {
        nodes: 2,
        locks: 64,
        shards: 4,
        ..Default::default()
    });
    let h = c.handle(0);
    for l in 0..64u32 {
        h.acquire(ClusterLockId::entry(l), Mode::Read).unwrap();
        h.release(ClusterLockId::entry(l)).unwrap();
    }
    let snap = c.metrics_snapshot();
    let report = c.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    let mut out =
        String::from("\nper-shard series (2 nodes x 4 shards, 64-lock churn from node 0):\n");
    for line in snap.lines() {
        if line.starts_with("dlm_shard_") {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}
