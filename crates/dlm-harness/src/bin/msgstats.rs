//! Diagnostic: per-kind message breakdown for each protocol at a given node
//! count (default 32). Usage: `msgstats [nodes]`.

use dlm_workload::{run_workload, ProtocolKind, WorkloadParams};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    for proto in [
        ProtocolKind::Hier,
        ProtocolKind::NaimiPure,
        ProtocolKind::NaimiSameWork,
    ] {
        let params = WorkloadParams::linux_cluster(nodes, proto);
        let report = run_workload(&params);
        println!(
            "{:16} nodes={} ops={}/{} requests={} messages={} msgs/req={:.3} mean-wait={:.1}ms",
            proto.label(),
            nodes,
            report.ops_completed,
            report.ops_expected,
            report.requests,
            report.messages,
            report.messages_per_request(),
            report.op_latency.mean() / 1000.0,
        );
        for (kind, count) in report.sent_by_kind.iter() {
            println!(
                "    {:10} {:>8}  ({:.3}/req)",
                kind,
                count,
                count as f64 / report.requests as f64
            );
        }
        // Structured-trace view: how often each paper rule fired (empty for
        // the Naimi series, which is not instrumented).
        if report.rule_counters.total() > 0 {
            println!(
                "  rule firings (trace sends {} = messages {}):",
                report.trace_sends.total(),
                report.messages,
            );
            for (rule, count) in report.rule_counters.iter() {
                println!(
                    "    {:24} {:>8}  ({:.3}/req)",
                    rule,
                    count,
                    count as f64 / report.requests as f64
                );
            }
        }
    }
}
