//! Regenerate Figure 8 (request latency factor vs. nodes, three protocols).

use dlm_harness::{fig8, render_table, write_tsv, FigureOptions};

fn main() {
    let fig = fig8(&FigureOptions::default());
    print!("{}", render_table(&fig));
    let path = write_tsv(&fig, std::path::Path::new("results")).expect("write tsv");
    eprintln!("wrote {}", path.display());
}
