//! The per-figure sweeps, with the paper's parameters.
//!
//! Every figure is described as a *plan*: a set of workload points, each
//! tagged with the `(figure, series, x)` slots its metrics feed. The plan's
//! jobs — one per `(point, seed)` pair — fan out over the worker pool in
//! [`crate::pool`], and the ordered merge folds each slot's per-seed values
//! in ascending seed order, so the output is bit-identical to the old
//! sequential sweep for any worker count. Plans also let figures that read
//! different metrics off the *same* runs (7 with 8, 9 with 10) share one
//! simulation per point instead of re-running it, which is where
//! [`all_figures`] gets most of its speedup.

use crate::figure::{Figure, Series};
use crate::pool::run_jobs;
use dlm_core::{Ablation, ProtocolConfig};
use dlm_workload::{run_workload, ProtocolKind, WorkloadParams, WorkloadReport};

/// Sweep tuning: trade run time against smoothness. The defaults match the
/// committed `results/`; `FigureOptions::quick()` is used by tests and CI.
#[derive(Debug, Clone, Copy)]
pub struct FigureOptions {
    /// Seeds averaged per point.
    pub seeds: u32,
    /// Operations per node per run.
    pub ops_per_node: u32,
    /// Worker threads for the sweep pool; `0` = one per available core.
    /// Any value produces identical figures — only wall-clock changes.
    pub workers: usize,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            seeds: 3,
            ops_per_node: 40,
            workers: 0,
        }
    }
}

impl FigureOptions {
    /// Reduced effort for tests.
    pub fn quick() -> Self {
        FigureOptions {
            seeds: 2,
            ops_per_node: 15,
            workers: 0,
        }
    }

    fn worker_count(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// The node counts of the §4.1 Linux-cluster experiments (Figures 7 and 8).
pub const FIG7_NODES: [usize; 9] = [2, 4, 6, 8, 12, 16, 20, 25, 32];

/// The node counts of the §4.2 IBM-SP experiments (Figures 9 and 10).
pub const FIG9_NODES: [usize; 9] = [2, 4, 8, 16, 32, 48, 64, 80, 120];

/// The non-critical : critical ratios of §4.2.
pub const RATIOS: [u32; 4] = [1, 5, 10, 25];

/// Where one metric value lands: `figures[fig].series[series].values[x]`.
#[derive(Debug, Clone, Copy)]
struct Slot {
    fig: usize,
    series: usize,
    x: usize,
}

type Metric = Box<dyn Fn(&WorkloadReport) -> f64 + Send + Sync>;

/// A figure index paired with a constructor from the series parameter to
/// the metric its slots record.
type FigMetric<P> = (usize, fn(P) -> Metric);

/// One workload configuration and the slots its runs feed. A point with
/// several outputs is simulated **once** per seed; every metric reads the
/// same report.
struct Point {
    params: WorkloadParams,
    outputs: Vec<(Slot, Metric)>,
}

/// A figure minus its values; `run_plan` fills the series in.
struct Skeleton {
    name: &'static str,
    title: &'static str,
    x_label: &'static str,
    y_label: &'static str,
    x: Vec<f64>,
    series_labels: Vec<String>,
}

/// Execute every `(point, seed)` job across the pool and fold the metric
/// values into figures.
///
/// Jobs are enumerated point-major / seed-minor and the pool returns results
/// in job order, so each slot accumulates its seed values in ascending seed
/// order — the same floating-point fold the sequential per-point loop did.
fn run_plan(skeletons: Vec<Skeleton>, points: Vec<Point>, opts: &FigureOptions) -> Vec<Figure> {
    let jobs: Vec<(usize, u32)> = (0..points.len())
        .flat_map(|p| (0..opts.seeds).map(move |s| (p, s)))
        .collect();
    let results = run_jobs(jobs, opts.worker_count(), |(p, seed)| {
        let point = &points[p];
        let mut params = point.params;
        params.ops_per_node = opts.ops_per_node;
        params.seed = 0xFEED + seed as u64 * 7919;
        let report = run_workload(&params);
        assert!(
            report.complete(),
            "run must complete: {:?} n={} proto={:?} seed={}",
            report.ops_completed,
            params.nodes,
            params.protocol,
            params.seed
        );
        point
            .outputs
            .iter()
            .map(|(slot, metric)| (*slot, metric(&report)))
            .collect::<Vec<(Slot, f64)>>()
    });

    let mut sums: Vec<Vec<Vec<f64>>> = skeletons
        .iter()
        .map(|sk| vec![vec![0.0; sk.x.len()]; sk.series_labels.len()])
        .collect();
    for job_outputs in results {
        for (slot, value) in job_outputs {
            sums[slot.fig][slot.series][slot.x] += value;
        }
    }
    let k = opts.seeds as f64;
    skeletons
        .into_iter()
        .zip(sums)
        .map(|(sk, fig_sums)| Figure {
            name: sk.name.into(),
            title: sk.title.into(),
            x_label: sk.x_label.into(),
            y_label: sk.y_label.into(),
            x: sk.x,
            series: sk
                .series_labels
                .into_iter()
                .zip(fig_sums)
                .map(|(label, values)| Series {
                    label,
                    values: values.into_iter().map(|v| v / k).collect(),
                })
                .collect(),
        })
        .collect()
}

/// Figures 7 and 8 sweep the three protocols over the Linux-cluster nodes.
const LINUX_PROTOS: [ProtocolKind; 3] = [
    ProtocolKind::NaimiSameWork,
    ProtocolKind::NaimiPure,
    ProtocolKind::Hier,
];

fn fig7_metric(p: ProtocolKind) -> Metric {
    if p == ProtocolKind::NaimiSameWork {
        // Same-work is normalized to *functional* requests (the request
        // count pure issues); its extra per-entry acquisitions are overhead,
        // which is the point of the series.
        Box::new(|r: &WorkloadReport| r.messages_per_functional_request())
    } else {
        Box::new(|r: &WorkloadReport| r.messages_per_request())
    }
}

fn fig8_metric(_p: ProtocolKind) -> Metric {
    Box::new(|r: &WorkloadReport| r.latency_factor())
}

/// The request-latency percentiles of the tail figure, in series order.
const TAIL_QS: [(f64, &str); 3] = [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")];

/// One point per `(protocol, node-count)`; each point feeds every requested
/// `(figure index, metric)` pair. When `tail_fig` is set, the hierarchical
/// protocol's runs additionally feed the latency-tail figure at that index —
/// the percentile series ride the same simulations instead of re-running
/// them. Points that would record nothing are skipped entirely.
fn linux_points(figs: &[FigMetric<ProtocolKind>], tail_fig: Option<usize>) -> Vec<Point> {
    let mut points = Vec::new();
    for (series, &proto) in LINUX_PROTOS.iter().enumerate() {
        for (x, &n) in FIG7_NODES.iter().enumerate() {
            let mut outputs: Vec<(Slot, Metric)> = figs
                .iter()
                .map(|&(fig, mk)| (Slot { fig, series, x }, mk(proto)))
                .collect();
            if let (Some(fig), ProtocolKind::Hier) = (tail_fig, proto) {
                for (tail_series, &(q, _)) in TAIL_QS.iter().enumerate() {
                    outputs.push((
                        Slot {
                            fig,
                            series: tail_series,
                            x,
                        },
                        Box::new(move |r: &WorkloadReport| {
                            r.request_latency.quantile(q) as f64 / 1000.0
                        }),
                    ));
                }
            }
            if outputs.is_empty() {
                continue;
            }
            points.push(Point {
                params: WorkloadParams::linux_cluster(n, proto),
                outputs,
            });
        }
    }
    points
}

fn skeleton_fig7() -> Skeleton {
    Skeleton {
        name: "fig7",
        title: "Scalability of Message Overhead",
        x_label: "nodes",
        y_label: "messages per lock request",
        x: FIG7_NODES.iter().map(|&n| n as f64).collect(),
        series_labels: LINUX_PROTOS.iter().map(|p| p.label().to_string()).collect(),
    }
}

fn skeleton_fig8() -> Skeleton {
    Skeleton {
        name: "fig8",
        title: "Request Latency Factor",
        x_label: "nodes",
        y_label: "mean request wait / mean one-way latency",
        x: FIG7_NODES.iter().map(|&n| n as f64).collect(),
        series_labels: LINUX_PROTOS.iter().map(|p| p.label().to_string()).collect(),
    }
}

fn fig9_metric(_r: u32) -> Metric {
    Box::new(|rep: &WorkloadReport| rep.messages_per_request())
}

fn fig10_metric(_r: u32) -> Metric {
    Box::new(|rep: &WorkloadReport| rep.request_latency.mean() / 1000.0)
}

/// One point per `(ratio, node-count)` on the SP configuration.
fn sp_points(figs: &[FigMetric<u32>]) -> Vec<Point> {
    let mut points = Vec::new();
    for (series, &ratio) in RATIOS.iter().enumerate() {
        for (x, &n) in FIG9_NODES.iter().enumerate() {
            points.push(Point {
                params: WorkloadParams::ibm_sp(n, ratio),
                outputs: figs
                    .iter()
                    .map(|&(fig, mk)| (Slot { fig, series, x }, mk(ratio)))
                    .collect(),
            });
        }
    }
    points
}

fn skeleton_latency_tail() -> Skeleton {
    Skeleton {
        name: "latency_tail",
        title: "Request Latency Tail Percentiles (Linux cluster, hierarchical)",
        x_label: "nodes",
        y_label: "request latency (ms)",
        x: FIG7_NODES.iter().map(|&n| n as f64).collect(),
        series_labels: TAIL_QS.iter().map(|&(_, l)| l.to_string()).collect(),
    }
}

fn skeleton_fig9() -> Skeleton {
    Skeleton {
        name: "fig9",
        title: "Messages for Non-Critical/Critical Ratios (IBM SP)",
        x_label: "nodes",
        y_label: "messages per lock request",
        x: FIG9_NODES.iter().map(|&n| n as f64).collect(),
        series_labels: RATIOS.iter().map(|r| format!("ratio={r}")).collect(),
    }
}

fn skeleton_fig10() -> Skeleton {
    Skeleton {
        name: "fig10",
        title: "Absolute Request Latency (IBM SP)",
        x_label: "nodes",
        y_label: "mean request latency (ms)",
        x: FIG9_NODES.iter().map(|&n| n as f64).collect(),
        series_labels: RATIOS.iter().map(|r| format!("ratio={r}")).collect(),
    }
}

fn ablation_configs() -> Vec<(String, ProtocolConfig)> {
    vec![
        ("paper".into(), ProtocolConfig::paper()),
        (
            "no-local-queueing".into(),
            ProtocolConfig::paper().without(Ablation::LocalQueueing),
        ),
        (
            "no-child-grants".into(),
            ProtocolConfig::paper().without(Ablation::ChildGrants),
        ),
        (
            "eager-release".into(),
            ProtocolConfig::paper().without(Ablation::ReleaseSuppression),
        ),
        (
            "no-freezing".into(),
            ProtocolConfig::paper().without(Ablation::Freezing),
        ),
    ]
}

/// One point per ablation config; x-axis slots 0..3 are the three metrics.
fn ablation_points(fig: usize) -> Vec<Point> {
    ablation_configs()
        .into_iter()
        .enumerate()
        .map(|(series, (_, cfg))| {
            let mut params = WorkloadParams::linux_cluster(16, ProtocolKind::Hier);
            params.hier_config = cfg;
            let metrics: [Metric; 3] = [
                Box::new(|r: &WorkloadReport| r.messages_per_request()),
                Box::new(|r: &WorkloadReport| r.op_latency.mean() / 1000.0),
                // Kind 4 = whole-table writes (see OpKind::index) — the
                // starvation-sensitive metric freezing protects.
                Box::new(|r: &WorkloadReport| {
                    r.op_latency_by_kind[4].quantile(0.99) as f64 / 1000.0
                }),
            ];
            Point {
                params,
                outputs: metrics
                    .into_iter()
                    .enumerate()
                    .map(|(x, metric)| (Slot { fig, series, x }, metric))
                    .collect(),
            }
        })
        .collect()
}

fn skeleton_ablations() -> Skeleton {
    Skeleton {
        name: "ablations",
        title: "Feature ablations at 16 nodes (Linux-cluster config)",
        x_label: "metric",
        y_label: "0: msgs/request   1: mean op wait (ms)   2: p99 W-op wait (ms)",
        x: vec![0.0, 1.0, 2.0],
        series_labels: ablation_configs().into_iter().map(|(l, _)| l).collect(),
    }
}

fn single(skeleton: Skeleton, points: Vec<Point>, opts: &FigureOptions) -> Figure {
    run_plan(vec![skeleton], points, opts)
        .pop()
        .expect("one figure per skeleton")
}

/// Figure 7: *Scalability of Message Overhead* — average messages per lock
/// request on the Linux-cluster configuration, for the hierarchical protocol
/// vs. the two Naimi variants.
pub fn fig7(opts: &FigureOptions) -> Figure {
    single(
        skeleton_fig7(),
        linux_points(&[(0, fig7_metric)], None),
        opts,
    )
}

/// Figure 8: *Request Latency Factor* — mean request wait divided by the
/// mean one-way network latency, same runs as Figure 7.
pub fn fig8(opts: &FigureOptions) -> Figure {
    single(
        skeleton_fig8(),
        linux_points(&[(0, fig8_metric)], None),
        opts,
    )
}

/// Latency-tail figure: p50/p95/p99 per-request wait of the hierarchical
/// protocol over the Linux-cluster node counts — the distribution behind
/// Figure 8's mean. Mean-based series hide exactly the outliers a locking
/// service gets paged for; this figure puts them on the y-axis.
pub fn latency_tail(opts: &FigureOptions) -> Figure {
    single(skeleton_latency_tail(), linux_points(&[], Some(0)), opts)
}

/// Figure 9: *Messages for Non-Critical : Critical Ratios* — messages per
/// request on the SP configuration, one series per ratio.
pub fn fig9(opts: &FigureOptions) -> Figure {
    single(skeleton_fig9(), sp_points(&[(0, fig9_metric)]), opts)
}

/// Figure 10: *Absolute Request Latency* — mean request wait in
/// milliseconds on the SP configuration, one series per ratio.
pub fn fig10(opts: &FigureOptions) -> Figure {
    single(skeleton_fig10(), sp_points(&[(0, fig10_metric)]), opts)
}

/// Ablation study over the §4.1 design claims: each protocol feature is
/// disabled in turn at a fixed 16-node Linux-cluster configuration; the
/// series report messages/request, mean operation wait, and p99 write wait.
pub fn ablations(opts: &FigureOptions) -> Figure {
    single(skeleton_ablations(), ablation_points(0), opts)
}

/// Node counts for the crash-recovery sweep. In-process clusters spawn
/// one worker thread per member, so the sweep tops out below the
/// simulator figures' 120 nodes.
pub const RECOVERY_NODES: [usize; 6] = [2, 4, 8, 16, 24, 32];

/// Crash-recovery latency figure: wall-clock milliseconds from killing a
/// member to a survivor's first Write grant in the regenerated epoch,
/// versus cluster size. Two series: crashing the **token holder** (the
/// worst case — the new root must regenerate the token and absorb every
/// survivor's R1 re-report) and crashing a **leaf** that never touched
/// the lock (the floor — the view change and link repair without token
/// regeneration).
///
/// Unlike Figures 7–10 this runs the in-process cluster runtime (real
/// threads, channel transport) rather than the virtual-time simulator:
/// recovery cost is scan/repair fan-out plus the re-report wave, which
/// only exists in the runtime. `opts.seeds` sets the repetitions averaged
/// per point (the runtime is deterministic in outcome but not in
/// scheduling).
pub fn recovery(opts: &FigureOptions) -> Figure {
    use dlm_cluster::{Cluster, ClusterConfig, LockId};
    use dlm_core::Mode;
    let series_cfg = [("token holder", true), ("leaf", false)];
    let mut series = Vec::new();
    for (label, crash_holder) in series_cfg {
        let mut values = Vec::new();
        for &n in &RECOVERY_NODES {
            let mut total_ms = 0.0;
            for _ in 0..opts.seeds.max(1) {
                let cluster = Cluster::new(ClusterConfig {
                    nodes: n,
                    locks: 1,
                    ..Default::default()
                });
                if crash_holder {
                    // Pull the token onto the victim; the lazy release
                    // leaves it there.
                    let h = cluster.handle(1);
                    h.acquire(LockId(0), Mode::Write).expect("pull token");
                    h.release(LockId(0)).expect("release at victim");
                }
                let start = std::time::Instant::now();
                cluster.crash_node(1);
                // Tight 2 ms settle windows: the default 20 ms margin
                // would drown the scan/repair fan-out being plotted.
                cluster.recover_within(1, std::time::Duration::from_millis(2));
                let h0 = cluster.handle(0);
                h0.acquire(LockId(0), Mode::Write).expect("recovered Write");
                total_ms += start.elapsed().as_secs_f64() * 1e3;
                h0.release(LockId(0)).expect("release");
                let report = cluster.shutdown();
                assert!(
                    report.audit_errors.is_empty(),
                    "recovery figure audit (n={n}): {:?}",
                    report.audit_errors
                );
            }
            values.push(total_ms / opts.seeds.max(1) as f64);
        }
        series.push(Series {
            label: label.into(),
            values,
        });
    }
    Figure {
        name: "recovery".into(),
        title: "Crash-Recovery Latency (in-process cluster)".into(),
        x_label: "nodes".into(),
        y_label: "ms from kill to restored Write service".into(),
        x: RECOVERY_NODES.iter().map(|&n| n as f64).collect(),
        series,
    }
}

/// Every figure plus the ablations from **one shared plan**: Figures 7 and 8
/// read their metrics off the same Linux-cluster runs, 9 and 10 off the same
/// SP runs, so the whole set costs roughly half the simulations of calling
/// the figure functions one by one — and the output is value-identical to
/// them.
pub fn all_figures(opts: &FigureOptions) -> Vec<Figure> {
    let skeletons = vec![
        skeleton_fig7(),
        skeleton_fig8(),
        skeleton_fig9(),
        skeleton_fig10(),
        skeleton_ablations(),
        skeleton_latency_tail(),
    ];
    let mut points = linux_points(&[(0, fig7_metric), (1, fig8_metric)], Some(5));
    points.extend(sp_points(&[(2, fig9_metric), (3, fig10_metric)]));
    points.extend(ablation_points(4));
    run_plan(skeletons, points, opts)
}
