//! The per-figure sweeps, with the paper's parameters.

use crate::figure::{Figure, Series};
use dlm_core::{Ablation, ProtocolConfig};
use dlm_workload::{run_workload, ProtocolKind, WorkloadParams, WorkloadReport};

/// Sweep tuning: trade run time against smoothness. The defaults match the
/// committed `results/`; `FigureOptions::quick()` is used by tests and CI.
#[derive(Debug, Clone, Copy)]
pub struct FigureOptions {
    /// Seeds averaged per point.
    pub seeds: u32,
    /// Operations per node per run.
    pub ops_per_node: u32,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            seeds: 3,
            ops_per_node: 40,
        }
    }
}

impl FigureOptions {
    /// Reduced effort for tests.
    pub fn quick() -> Self {
        FigureOptions {
            seeds: 2,
            ops_per_node: 15,
        }
    }
}

/// Run `params` over the option's seed set and fold the metric.
fn averaged(
    mut params: WorkloadParams,
    opts: &FigureOptions,
    metric: impl Fn(&WorkloadReport) -> f64,
) -> f64 {
    params.ops_per_node = opts.ops_per_node;
    let mut total = 0.0;
    for seed in 0..opts.seeds {
        params.seed = 0xFEED + seed as u64 * 7919;
        let report = run_workload(&params);
        assert!(
            report.complete(),
            "run must complete: {:?} n={} proto={:?} seed={}",
            report.ops_completed,
            params.nodes,
            params.protocol,
            params.seed
        );
        total += metric(&report);
    }
    total / opts.seeds as f64
}

/// Run the sweep for one series in parallel over the x-points.
fn sweep<P: Sync>(points: &[P], run_point: impl Fn(&P) -> f64 + Sync) -> Vec<f64> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = points
            .iter()
            .map(|p| scope.spawn(|| run_point(p)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect()
    })
}

/// The node counts of the §4.1 Linux-cluster experiments (Figures 7 and 8).
pub const FIG7_NODES: [usize; 9] = [2, 4, 6, 8, 12, 16, 20, 25, 32];

/// The node counts of the §4.2 IBM-SP experiments (Figures 9 and 10).
pub const FIG9_NODES: [usize; 9] = [2, 4, 8, 16, 32, 48, 64, 80, 120];

/// The non-critical : critical ratios of §4.2.
pub const RATIOS: [u32; 4] = [1, 5, 10, 25];

fn linux_cluster_series(
    protocol: ProtocolKind,
    opts: &FigureOptions,
    metric: impl Fn(&WorkloadReport) -> f64 + Sync,
) -> Series {
    let values = sweep(&FIG7_NODES, |&n| {
        averaged(WorkloadParams::linux_cluster(n, protocol), opts, &metric)
    });
    Series {
        label: protocol.label().to_string(),
        values,
    }
}

/// Figure 7: *Scalability of Message Overhead* — average messages per lock
/// request on the Linux-cluster configuration, for the hierarchical protocol
/// vs. the two Naimi variants.
pub fn fig7(opts: &FigureOptions) -> Figure {
    let protos = [
        ProtocolKind::NaimiSameWork,
        ProtocolKind::NaimiPure,
        ProtocolKind::Hier,
    ];
    let series = protos
        .iter()
        .map(|&p| {
            linux_cluster_series(p, opts, move |r| {
                if p == ProtocolKind::NaimiSameWork {
                    // Same-work is normalized to *functional* requests (the
                    // request count pure issues); its extra per-entry
                    // acquisitions are overhead, which is the point of the
                    // series.
                    r.messages_per_functional_request()
                } else {
                    r.messages_per_request()
                }
            })
        })
        .collect();
    Figure {
        name: "fig7".into(),
        title: "Scalability of Message Overhead".into(),
        x_label: "nodes".into(),
        y_label: "messages per lock request".into(),
        x: FIG7_NODES.iter().map(|&n| n as f64).collect(),
        series,
    }
}

/// Figure 8: *Request Latency Factor* — mean request wait divided by the
/// mean one-way network latency, same runs as Figure 7.
pub fn fig8(opts: &FigureOptions) -> Figure {
    let protos = [
        ProtocolKind::NaimiSameWork,
        ProtocolKind::NaimiPure,
        ProtocolKind::Hier,
    ];
    let series = protos
        .iter()
        .map(|&p| linux_cluster_series(p, opts, |r| r.latency_factor()))
        .collect();
    Figure {
        name: "fig8".into(),
        title: "Request Latency Factor".into(),
        x_label: "nodes".into(),
        y_label: "mean request wait / mean one-way latency".into(),
        x: FIG7_NODES.iter().map(|&n| n as f64).collect(),
        series,
    }
}

fn sp_series(
    ratio: u32,
    opts: &FigureOptions,
    metric: impl Fn(&WorkloadReport) -> f64 + Sync,
) -> Series {
    let values = sweep(&FIG9_NODES, |&n| {
        averaged(WorkloadParams::ibm_sp(n, ratio), opts, &metric)
    });
    Series {
        label: format!("ratio={ratio}"),
        values,
    }
}

/// Figure 9: *Messages for Non-Critical : Critical Ratios* — messages per
/// request on the SP configuration, one series per ratio.
pub fn fig9(opts: &FigureOptions) -> Figure {
    let series = RATIOS
        .iter()
        .map(|&r| sp_series(r, opts, |rep| rep.messages_per_request()))
        .collect();
    Figure {
        name: "fig9".into(),
        title: "Messages for Non-Critical/Critical Ratios (IBM SP)".into(),
        x_label: "nodes".into(),
        y_label: "messages per lock request".into(),
        x: FIG9_NODES.iter().map(|&n| n as f64).collect(),
        series,
    }
}

/// Figure 10: *Absolute Request Latency* — mean request wait in
/// milliseconds on the SP configuration, one series per ratio.
pub fn fig10(opts: &FigureOptions) -> Figure {
    let series = RATIOS
        .iter()
        .map(|&r| sp_series(r, opts, |rep| rep.request_latency.mean() / 1000.0))
        .collect();
    Figure {
        name: "fig10".into(),
        title: "Absolute Request Latency (IBM SP)".into(),
        x_label: "nodes".into(),
        y_label: "mean request latency (ms)".into(),
        x: FIG9_NODES.iter().map(|&n| n as f64).collect(),
        series,
    }
}

/// Ablation study over the §4.1 design claims: each protocol feature is
/// disabled in turn at a fixed 16-node Linux-cluster configuration; the
/// series report messages/request and mean operation wait.
pub fn ablations(opts: &FigureOptions) -> Figure {
    let configs: Vec<(String, ProtocolConfig)> = vec![
        ("paper".into(), ProtocolConfig::paper()),
        (
            "no-local-queueing".into(),
            ProtocolConfig::paper().without(Ablation::LocalQueueing),
        ),
        (
            "no-child-grants".into(),
            ProtocolConfig::paper().without(Ablation::ChildGrants),
        ),
        (
            "eager-release".into(),
            ProtocolConfig::paper().without(Ablation::ReleaseSuppression),
        ),
        (
            "no-freezing".into(),
            ProtocolConfig::paper().without(Ablation::Freezing),
        ),
    ];
    // x-axis: 0 = msgs/request, 1 = mean op wait (ms), 2 = p99 write-op wait
    // (ms — the starvation-sensitive metric freezing protects).
    let series = std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .map(|(label, cfg)| {
                let label = label.clone();
                let cfg = *cfg;
                scope.spawn(move || {
                    let mut params = WorkloadParams::linux_cluster(16, ProtocolKind::Hier);
                    params.hier_config = cfg;
                    params.ops_per_node = opts.ops_per_node;
                    let mut msgs = 0.0;
                    let mut wait = 0.0;
                    let mut w_p99 = 0.0;
                    for seed in 0..opts.seeds {
                        params.seed = 0xFEED + seed as u64 * 7919;
                        let report = run_workload(&params);
                        assert!(report.complete(), "ablation run stuck: {label}");
                        msgs += report.messages_per_request();
                        wait += report.op_latency.mean() / 1000.0;
                        // Kind 4 = whole-table writes (see OpKind::index).
                        w_p99 += report.op_latency_by_kind[4].quantile(0.99) as f64 / 1000.0;
                    }
                    let k = opts.seeds as f64;
                    Series {
                        label,
                        values: vec![msgs / k, wait / k, w_p99 / k],
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ablation thread"))
            .collect()
    });
    Figure {
        name: "ablations".into(),
        title: "Feature ablations at 16 nodes (Linux-cluster config)".into(),
        x_label: "metric".into(),
        y_label: "0: msgs/request   1: mean op wait (ms)   2: p99 W-op wait (ms)".into(),
        x: vec![0.0, 1.0, 2.0],
        series,
    }
}
