//! The reservation workload on a **real socket cluster**: the per-member
//! driver shared by the `dlm-node` process binary, the multi-process
//! `dlm-harness` driver, and the socket benches.
//!
//! The simulator runs the §4 workload on virtual time; here the same
//! operation stream (same mix, same per-node RNG discipline, same
//! hierarchical expansion) drives a [`dlm_cluster::Node`] member through
//! its blocking [`NodeHandle`], with critical-section and idle times
//! slept in real time. A `time_scale` divisor compresses the paper's
//! 15 ms / 150 ms think times so a full figure's workload completes in
//! test-friendly wall time while keeping the think-to-CS ratio intact.

use dlm_cluster::{ClusterConfig, NodeHandle};
use dlm_core::LockId;
use dlm_workload::{OpKind, OpPlan, ProtocolKind, WorkloadParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// What one member did over the wire.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemberOutcome {
    /// Application operations completed.
    pub ops_completed: u32,
    /// Lock acquisitions performed (entry ops take two locks).
    pub acquires: u64,
    /// Rule 7 upgrades performed.
    pub upgrades: u64,
}

/// The [`ClusterConfig`] every member of a socket cluster running
/// `params` must use (identical on all members, or the shard hash and
/// audit disagree).
pub fn member_cluster_config(params: &WorkloadParams) -> ClusterConfig {
    ClusterConfig {
        nodes: params.nodes,
        locks: params.lock_count(),
        protocol: params.hier_config,
        ..Default::default()
    }
}

fn sample_around(mean: u64, rng: &mut SmallRng) -> u64 {
    // "Randomized around the mean" (§4): uniform on [mean/2, 3·mean/2],
    // matching the simulator's actor.
    if mean == 0 {
        return 0;
    }
    let half = mean / 2;
    rng.gen_range(mean - half..=mean + half)
}

fn think(micros: u64, scale: u64) {
    let scaled = micros / scale.max(1);
    if scaled > 0 {
        std::thread::sleep(Duration::from_micros(scaled));
    }
}

/// Run member `me`'s share of the workload against its blocking handle.
///
/// Deterministic per member: the operation stream depends only on
/// `params.seed` and `me` (grant interleaving across members does not,
/// of course, replay). `params.protocol` must be [`ProtocolKind::Hier`] —
/// the socket runtime speaks only the hierarchical protocol.
pub fn run_member_workload(
    handle: &NodeHandle,
    me: u32,
    params: &WorkloadParams,
    time_scale: u64,
) -> MemberOutcome {
    params.validate();
    assert_eq!(
        params.protocol,
        ProtocolKind::Hier,
        "the socket runtime runs the hierarchical protocol only"
    );
    let mut rng = SmallRng::seed_from_u64(
        params.seed ^ (u64::from(me) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut out = MemberOutcome::default();
    for _ in 0..params.ops_per_node {
        think(sample_around(params.idle_mean, &mut rng), time_scale);
        let kind = OpKind::sample(&params.mix, &mut rng);
        let entry =
            if params.hot_entry_percent > 0 && rng.gen_range(0u8..100) < params.hot_entry_percent {
                0
            } else {
                rng.gen_range(0..params.entries)
            };
        let mut plan = OpPlan::expand(kind, params.protocol, entry, params.entries);
        plan.upgrade &= params.upgrade_u_ops;
        for (lock, mode) in &plan.locks {
            handle.acquire(*lock, *mode).expect("acquire");
            out.acquires += 1;
        }
        think(sample_around(params.cs_mean, &mut rng), time_scale);
        if plan.upgrade {
            handle.upgrade(LockId::TABLE).expect("upgrade");
            out.upgrades += 1;
            think(sample_around(params.cs_mean / 2, &mut rng), time_scale);
        }
        for (lock, _) in plan.locks.iter().rev() {
            handle.release(*lock).expect("release");
        }
        out.ops_completed += 1;
    }
    out
}

/// The shard-churn workload over the wire: member `me` hammers
/// acquire/release on *its own* entry lock. The first acquisition drags
/// the token from node 0 across the wire; every subsequent one is a
/// message-free local admission — the partitioned steady state the
/// in-process `shard_churn` bench measures.
pub fn run_member_churn(handle: &NodeHandle, me: u32, entries: u32, ops: u32) -> MemberOutcome {
    assert!(entries >= 1);
    let lock = LockId::entry(me % entries);
    let mut out = MemberOutcome::default();
    for _ in 0..ops {
        handle
            .acquire(lock, dlm_core::Mode::Write)
            .expect("churn acquire");
        handle.release(lock).expect("churn release");
        out.acquires += 1;
        out.ops_completed += 1;
    }
    out
}

/// Wait for **global** quiescence of an in-process member set: every
/// member simultaneously idle with the cluster-wide message sum stable
/// for `window`. Returns false if `timeout` passes first. (The
/// multi-process driver does the same dance over the `idle?` line
/// protocol; a single member's idleness is necessary, not sufficient.)
pub fn quiesce_members(nodes: &[dlm_cluster::Node], window: Duration, timeout: Duration) -> bool {
    use std::time::Instant;
    let deadline = Instant::now() + timeout;
    let sum = |nodes: &[dlm_cluster::Node]| -> u64 {
        nodes.iter().map(dlm_cluster::Node::messages_sent).sum()
    };
    let mut last = sum(nodes);
    let mut stable = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(2));
        let now_sum = sum(nodes);
        if now_sum != last || !nodes.iter().all(dlm_cluster::Node::is_idle) {
            last = now_sum;
            stable = Instant::now();
        } else if stable.elapsed() >= window {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
    }
}

/// Lowercase hex, for shipping binary state over the line protocol.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`hex_encode`]; `None` on odd length or a non-hex digit.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let data: Vec<u8> = (0..=255).collect();
        let hex = hex_encode(&data);
        assert_eq!(hex_decode(&hex).as_deref(), Some(data.as_slice()));
        assert_eq!(hex_decode("zz"), None);
        assert_eq!(hex_decode("abc"), None, "odd length rejected");
        assert_eq!(hex_decode("").as_deref(), Some(&[][..]));
    }

    #[test]
    fn member_config_mirrors_params() {
        let params = WorkloadParams::linux_cluster(4, ProtocolKind::Hier);
        let config = member_cluster_config(&params);
        assert_eq!(config.nodes, 4);
        assert_eq!(config.locks, 9, "table + 8 entries");
    }

    #[test]
    fn workload_over_loopback_completes_and_audits() {
        use dlm_cluster::{audit_process_states, Node, NodeConfig, SocketConfig};
        use std::net::TcpListener;

        let mut params = WorkloadParams::linux_cluster(2, ProtocolKind::Hier);
        params.ops_per_node = 6;
        params.seed = 0xFACE;
        let listeners: Vec<TcpListener> = (0..2)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        let addrs: Vec<_> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        drop(listeners);
        let nodes: Vec<Node> = (0..2)
            .map(|me| {
                Node::new(NodeConfig {
                    cluster: member_cluster_config(&params),
                    socket: SocketConfig::tcp(me, addrs.clone()),
                })
                .expect("bind member")
            })
            .collect();
        let outcomes: Vec<MemberOutcome> = std::thread::scope(|s| {
            // The collect is the point: every member thread must be spawned
            // before the first join, or the workload deadlocks.
            #[allow(clippy::needless_collect)]
            let joins: Vec<_> = nodes
                .iter()
                .map(|node| {
                    let h = node.handle();
                    let me = node.id();
                    let params = &params;
                    s.spawn(move || run_member_workload(&h, me, params, 1000))
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for (me, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.ops_completed, 6, "member {me}");
            assert!(outcome.acquires >= 6, "member {me}");
        }
        assert!(
            quiesce_members(&nodes, Duration::from_millis(30), Duration::from_secs(10)),
            "never quiesced"
        );
        let states: Vec<_> = nodes.into_iter().map(|n| n.shutdown().states).collect();
        let errors = audit_process_states(params.hier_config, &states);
        assert!(errors.is_empty(), "{errors:?}");
    }
}
