//! Experiment harness: regenerates every figure of the paper's evaluation
//! section on the simulator, with the paper's parameters.
//!
//! | Paper artifact | Generator | Metric |
//! |---|---|---|
//! | Fig. 7 (messages vs nodes, 3 protocols) | [`fig7`] | messages / lock request |
//! | Fig. 8 (latency factor vs nodes)        | [`fig8`] | mean wait / mean net latency |
//! | Fig. 9 (messages vs nodes per ratio)    | [`fig9`] | messages / lock request |
//! | Fig. 10 (latency vs nodes per ratio)    | [`fig10`] | mean wait (ms) |
//! | §4.1 design claims | [`ablations`] | per-feature deltas |
//!
//! Every binary prints an aligned table and writes a TSV under `results/`.
//! Runs are averaged over a small fixed seed set; everything is
//! deterministic.
//!
//! Beyond the simulator, the [`sockload`] module drives the same workload
//! over a **real socket cluster**: the `dlm-node` binary runs one member
//! per process and the `dlm-harness` binary spawns, drives, measures, and
//! audits an N-process loopback cluster end to end (Figures 7–10 and the
//! shard-churn workload over TCP).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod figure;
mod figures;
mod pool;
pub mod sockload;

pub use figure::{render_table, write_tsv, Figure, Series};
pub use figures::{
    ablations, all_figures, fig10, fig7, fig8, fig9, latency_tail, recovery, FigureOptions,
    RECOVERY_NODES,
};
pub use pool::run_jobs;
