//! Figure data containers and rendering.

use std::io::Write as _;
use std::path::Path;

/// One line in a figure: a label plus one y-value per x-point.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. "our-protocol", "ratio=25").
    pub label: String,
    /// One value per entry of the figure's x-axis.
    pub values: Vec<f64>,
}

/// A reproduced figure: an x-axis plus several series over it.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. `fig7`.
    pub name: String,
    /// Human title, e.g. "Scalability of Message Overhead".
    pub title: String,
    /// X-axis label, e.g. "nodes".
    pub x_label: String,
    /// Y-axis label, e.g. "messages per lock request".
    pub y_label: String,
    /// X-axis values.
    pub x: Vec<f64>,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Look up a series by label (panics if absent — harness bug).
    pub fn series(&self, label: &str) -> &Series {
        self.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("no series {label:?} in {}", self.name))
    }

    /// Value of `label` at the largest x (the asymptote proxy).
    pub fn tail(&self, label: &str) -> f64 {
        *self.series(label).values.last().expect("series has values")
    }
}

/// Render an aligned text table of the figure (x column + one column per
/// series), matching what the paper's plots show.
pub fn render_table(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {} — {}\n", fig.name, fig.title));
    out.push_str(&format!("# y: {}\n", fig.y_label));
    out.push_str(&format!("{:>8}", fig.x_label));
    for s in &fig.series {
        out.push_str(&format!("  {:>18}", s.label));
    }
    out.push('\n');
    for (i, x) in fig.x.iter().enumerate() {
        out.push_str(&format!("{x:>8.0}"));
        for s in &fig.series {
            out.push_str(&format!("  {:>18.3}", s.values[i]));
        }
        out.push('\n');
    }
    out
}

/// Write the figure as a TSV file (x column + one column per series).
pub fn write_tsv(fig: &Figure, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.tsv", fig.name));
    let mut f = std::fs::File::create(&path)?;
    write!(f, "{}", fig.x_label)?;
    for s in &fig.series {
        write!(f, "\t{}", s.label)?;
    }
    writeln!(f)?;
    for (i, x) in fig.x.iter().enumerate() {
        write!(f, "{x}")?;
        for s in &fig.series {
            write!(f, "\t{}", s.values[i])?;
        }
        writeln!(f)?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        Figure {
            name: "figX".into(),
            title: "Test".into(),
            x_label: "nodes".into(),
            y_label: "msgs".into(),
            x: vec![2.0, 4.0],
            series: vec![
                Series {
                    label: "a".into(),
                    values: vec![1.0, 2.0],
                },
                Series {
                    label: "b".into(),
                    values: vec![3.0, 4.5],
                },
            ],
        }
    }

    #[test]
    fn table_contains_all_cells() {
        let t = render_table(&sample());
        for needle in ["figX", "nodes", "a", "b", "1.000", "4.500"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn series_lookup_and_tail() {
        let f = sample();
        assert_eq!(f.series("a").values[0], 1.0);
        assert_eq!(f.tail("b"), 4.5);
    }

    #[test]
    fn tsv_round_trip() {
        let dir = std::env::temp_dir().join("dlm-harness-test");
        let path = write_tsv(&sample(), &dir).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("nodes\ta\tb\n"));
        assert!(content.contains("2\t1\t3"));
    }
}
