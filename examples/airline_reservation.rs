//! The paper's §4 motivating application: a multi-airline reservation
//! system. Ticket prices live in a shared table; every node runs an agent
//! issuing a realistic mix of lookups (IR+R), table scans (R), priced
//! updates (U), single-seat bookings (IW+W) and full re-pricings (W).
//!
//! This example runs the workload on the discrete-event simulator under all
//! three protocols of Figure 7 and prints the comparison the paper's
//! evaluation is built on.
//!
//! Run with: `cargo run --release --example airline_reservation`

use dlm::workload::{run_workload, ProtocolKind, WorkloadParams};

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16usize);

    println!("multi-airline reservation, {nodes} nodes, paper mix IR/R/U/IW/W = 80/10/4/5/1");
    println!("(critical section ~15 ms, idle ~150 ms, WAN-ish 150 ms links)\n");
    println!(
        "{:<18} {:>9} {:>10} {:>10} {:>12} {:>12}",
        "protocol", "ops", "requests", "messages", "msgs/req", "mean wait"
    );

    for protocol in [
        ProtocolKind::Hier,
        ProtocolKind::NaimiPure,
        ProtocolKind::NaimiSameWork,
    ] {
        let params = WorkloadParams::linux_cluster(nodes, protocol);
        let report = run_workload(&params);
        assert!(report.complete(), "workload must finish");
        println!(
            "{:<18} {:>9} {:>10} {:>10} {:>12.3} {:>9.1} ms",
            protocol.label(),
            report.ops_completed,
            report.requests,
            report.messages,
            report.messages_per_request(),
            report.op_latency.mean() / 1000.0,
        );
    }

    println!("\nPer-kind traffic of the hierarchical protocol:");
    let report = run_workload(&WorkloadParams::linux_cluster(nodes, ProtocolKind::Hier));
    for (kind, count) in report.sent_by_kind.iter() {
        println!("  {kind:<16} {count:>8}");
    }
    println!(
        "\nNote the shape of the comparison: the hierarchical protocol does MORE\n\
         work than naimi-pure (it really locks the whole table on table-level\n\
         operations) with FEWER messages per request, while naimi-same-work\n\
         pays for equivalent functionality with a superlinear latency blow-up."
    );
}
