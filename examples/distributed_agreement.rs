//! The paper's second application domain (§1): *distributed agreement*.
//! A cluster reaches agreement on a sequence of configuration changes by
//! funneling proposals through a W lock on a shared "config" object, while
//! every node continuously reads the current configuration under IR/R —
//! transaction-style processing on replicated state.
//!
//! Each accepted proposal bumps an epoch. Readers observe epochs
//! monotonically; proposals serialize; and the protocol's audit confirms
//! the locking layer stayed coherent throughout.
//!
//! Run with: `cargo run --release --example distributed_agreement`

use dlm::cluster::{Cluster, ClusterConfig, LockId, Mode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const NODES: u32 = 6;
const PROPOSALS_PER_NODE: u32 = 5;
const READS_PER_NODE: u32 = 40;

fn main() {
    let cluster = Cluster::new(ClusterConfig {
        nodes: NODES as usize,
        locks: 1,
        ..Default::default()
    });
    // The replicated configuration: an epoch counter (stand-in for a real
    // config blob). Writes only under W; reads under R.
    let epoch = Arc::new(AtomicU64::new(0));

    // One application per node (the protocol's single-pending model):
    // the first half of the cluster proposes, the second half reads.
    let writers: Vec<_> = (0..NODES / 2)
        .map(|i| {
            let h = cluster.handle(i);
            let epoch = Arc::clone(&epoch);
            std::thread::spawn(move || {
                for _ in 0..PROPOSALS_PER_NODE {
                    h.acquire(LockId::TABLE, Mode::Write).expect("W");
                    // Inside the critical section the proposer observes the
                    // current epoch and installs its successor — agreement
                    // by mutual exclusion.
                    let seen = epoch.load(Ordering::SeqCst);
                    epoch.store(seen + 1, Ordering::SeqCst);
                    h.release(LockId::TABLE).expect("release W");
                }
            })
        })
        .collect();

    let readers: Vec<_> = (NODES / 2..NODES)
        .map(|i| {
            let h = cluster.handle(i);
            let epoch = Arc::clone(&epoch);
            std::thread::spawn(move || {
                let mut last = 0;
                let mut regressions = 0;
                for _ in 0..READS_PER_NODE {
                    h.acquire(LockId::TABLE, Mode::Read).expect("R");
                    let seen = epoch.load(Ordering::SeqCst);
                    h.release(LockId::TABLE).expect("release R");
                    if seen < last {
                        regressions += 1;
                    }
                    last = seen;
                }
                regressions
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer");
    }
    let mut total_regressions = 0;
    for r in readers {
        total_regressions += r.join().expect("reader");
    }

    let final_epoch = epoch.load(Ordering::SeqCst);
    let expected = (NODES / 2) * PROPOSALS_PER_NODE;
    println!("final epoch: {final_epoch} (expected {expected})");
    println!("reader epoch regressions: {total_regressions} (expected 0)");
    assert_eq!(final_epoch, expected as u64, "no lost proposals");
    assert_eq!(total_regressions, 0, "epochs observed monotonically");

    cluster.quiesce(std::time::Duration::from_millis(15));
    let report = cluster.shutdown();
    assert!(report.audit_errors.is_empty(), "{:?}", report.audit_errors);
    println!(
        "agreement reached through {} protocol messages; audit clean",
        report.messages_sent
    );
}
