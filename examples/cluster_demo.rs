//! The protocol under *real* parallelism: a thread-per-node in-process
//! cluster (every message round-trips the binary wire codec) serving a
//! seat-booking service through the CosConcurrency-style `LockSet` API.
//!
//! Sixteen booking agents race to sell seats on three flights. Seat counts
//! are protected by entry locks under table intents; revenue reconciliation
//! takes the whole table in Upgrade mode and flips to Write atomically.
//!
//! Run with: `cargo run --release --example cluster_demo`

use dlm::api::LockSet;
use dlm::cluster::{Cluster, ClusterConfig, LockId, Mode};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

const FLIGHTS: u32 = 3;
const AGENTS: u32 = 8;
const SEATS_PER_FLIGHT: i64 = 40;

fn main() {
    let cluster = Cluster::new(ClusterConfig {
        nodes: AGENTS as usize,
        locks: 1 + FLIGHTS as usize, // table + one lock per flight
        ..Default::default()
    });

    // The shared "database": seats per flight and total revenue.
    let seats: Arc<Vec<AtomicI64>> = Arc::new(
        (0..FLIGHTS)
            .map(|_| AtomicI64::new(SEATS_PER_FLIGHT))
            .collect(),
    );
    let revenue = Arc::new(AtomicI64::new(0));

    let threads: Vec<_> = (0..AGENTS)
        .map(|agent| {
            let handle = cluster.handle(agent);
            let seats = Arc::clone(&seats);
            let revenue = Arc::clone(&revenue);
            std::thread::spawn(move || {
                let table = LockSet::new(handle.clone(), LockId::TABLE);
                let mut booked = 0u32;
                let mut audits = 0u32;
                for round in 0..30u32 {
                    if round % 10 == 9 {
                        // Revenue audit: exclusive read of the whole table in
                        // U, then an atomic upgrade to W to write the summary
                        // (the read-modify-write pattern of §3.4).
                        table
                            .read_then_write(
                                || revenue.load(Ordering::SeqCst),
                                |seen| revenue.store(seen + 1_000, Ordering::SeqCst),
                            )
                            .expect("audit");
                        audits += 1;
                        continue;
                    }
                    // Book a seat: table IW + flight entry W.
                    let flight = (agent + round) % FLIGHTS;
                    let entry = LockSet::new(handle.clone(), LockId::entry(flight));
                    table.lock(Mode::IntentWrite).expect("table IW");
                    entry.lock(Mode::Write).expect("entry W");
                    let left = seats[flight as usize].fetch_sub(1, Ordering::SeqCst) - 1;
                    if left < 0 {
                        // Sold out: undo.
                        seats[flight as usize].fetch_add(1, Ordering::SeqCst);
                    } else {
                        revenue.fetch_add(250, Ordering::SeqCst);
                        booked += 1;
                    }
                    entry.unlock().expect("entry unlock");
                    table.unlock().expect("table unlock");
                }
                (agent, booked, audits)
            })
        })
        .collect();

    let mut total_booked = 0;
    for t in threads {
        let (agent, booked, audits) = t.join().expect("agent thread");
        println!("agent {agent}: booked {booked} seats, ran {audits} audits");
        total_booked += booked as i64;
    }

    let remaining: i64 = seats.iter().map(|s| s.load(Ordering::SeqCst)).sum();
    println!(
        "\nseats remaining: {remaining} / {}",
        FLIGHTS as i64 * SEATS_PER_FLIGHT
    );
    println!("seats booked:    {total_booked}");
    assert_eq!(
        remaining + total_booked,
        FLIGHTS as i64 * SEATS_PER_FLIGHT,
        "no seat lost or double-sold under entry-level W locks"
    );

    cluster.quiesce(std::time::Duration::from_millis(20));
    let report = cluster.shutdown();
    assert!(
        report.audit_errors.is_empty(),
        "final audit: {:?}",
        report.audit_errors
    );
    println!(
        "protocol messages: {} (all frames through the binary codec); final audit clean",
        report.messages_sent
    );
}
