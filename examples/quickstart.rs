//! Quickstart: drive the hierarchical locking protocol on the deterministic
//! lock-step runtime and watch the paper's mechanics in action — compatible
//! concurrent grants, intent modes, token movement, FIFO freezing and the
//! atomic U→W upgrade.
//!
//! Run with: `cargo run --example quickstart`

use dlm::core::testkit::LockStepNet;
use dlm::core::{Mode, NodeId};

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn show(net: &LockStepNet) {
    for i in 0..net.len() as u32 {
        let n = net.node(i);
        println!(
            "  n{i}: token={:5} owned={:2} held={:2} pending={:?} copyset={:?}",
            n.has_token(),
            n.owned().to_string(),
            n.held().to_string(),
            n.pending().map(|m| m.to_string()),
            n.copyset()
                .iter()
                .map(|(k, v)| format!("{k}:{v}"))
                .collect::<Vec<_>>(),
        );
    }
}

fn main() {
    // Five nodes in a star; node 0 holds the token initially.
    let mut net = LockStepNet::star(5);

    banner("Concurrent readers: R is compatible with R");
    net.acquire(1, Mode::Read);
    net.acquire(2, Mode::Read);
    net.deliver_all();
    show(&net);
    assert_eq!(net.node(1).held(), Mode::Read);
    assert_eq!(net.node(2).held(), Mode::Read);
    println!("  -> both readers inside their critical sections simultaneously");

    banner("A writer must wait for the readers");
    net.acquire(3, Mode::Write);
    net.deliver_all();
    assert_eq!(net.node(3).held(), Mode::NoLock);
    println!("  -> writer n3 queued (modes R+R are incompatible with W)");
    net.release(1);
    net.release(2);
    net.settle();
    show(&net);
    assert_eq!(net.node(3).held(), Mode::Write);
    assert!(net.node(3).has_token(), "exclusive modes migrate the token");
    println!("  -> writer granted once the table drained; token moved to n3");

    banner("Hierarchical intent modes allow disjoint sub-locks");
    net.release(3);
    net.deliver_all();
    // n1 and n2 both announce finer-grained writes below this lock: IW is
    // compatible with IW, so no serialization happens at this level.
    net.acquire(1, Mode::IntentWrite);
    net.acquire(2, Mode::IntentWrite);
    net.deliver_all();
    assert_eq!(net.node(1).held(), Mode::IntentWrite);
    assert_eq!(net.node(2).held(), Mode::IntentWrite);
    println!("  -> two intent-write holders coexist (their entry locks are disjoint)");
    net.release(1);
    net.release(2);
    net.settle();

    banner("Atomic read-modify-write with the Upgrade mode (Rule 7)");
    net.acquire(4, Mode::Upgrade);
    net.deliver_all();
    assert_eq!(net.node(4).held(), Mode::Upgrade);
    println!("  -> n4 holds U (exclusive read; other readers could share)");
    net.upgrade(4);
    net.settle();
    assert_eq!(net.node(4).held(), Mode::Write);
    println!("  -> upgraded U->W without ever releasing: no lost update possible");
    assert_eq!(net.upgraded, vec![NodeId(4)]);
    net.release(4);
    net.settle();

    println!(
        "\nTotal protocol messages for everything above: {}",
        net.messages_sent
    );
    println!("Quiescent audit: clean ({} nodes)", net.len());
}
