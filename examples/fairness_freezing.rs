//! The §3.3 starvation scenario, live: a writer requests W while a stream of
//! readers keeps renewing IR. With freezing (Rule 6 / Table 1(d)) the writer
//! is served in FIFO order; with freezing ablated, compatible latecomers
//! overtake it indefinitely.
//!
//! Run with: `cargo run --example fairness_freezing`

use dlm::core::testkit::LockStepNet;
use dlm::core::{Ablation, Mode, ProtocolConfig};

/// Run the reader-stream-vs-writer scenario; returns how many reader grants
/// overtook the writer before it finally got in.
fn overtakes(config: ProtocolConfig, rounds: usize) -> Option<usize> {
    let mut net = LockStepNet::star_with_config(6, config);
    // Prime: nodes 1..=4 hold IR.
    for reader in 1..=4u32 {
        net.acquire(reader, Mode::IntentRead);
    }
    net.deliver_all();
    // Node 5 requests W — incompatible with all the IRs.
    net.acquire(5, Mode::Write);
    net.deliver_all();

    let mut reader_grants_after_w = 0;
    for round in 0..rounds {
        // Staggered reader churn: one reader at a time releases and
        // immediately re-requests, so the table is never fully drained
        // unless the new requests are held back (frozen).
        for reader in 1..=4u32 {
            if net.node(reader).held() == Mode::IntentRead {
                net.release(reader);
            }
            net.deliver_all();
            if net.node(5).held() == Mode::Write {
                println!(
                    "  writer granted after {round} reader cycles \
                     ({reader_grants_after_w} reader grants overtook it)"
                );
                return Some(reader_grants_after_w);
            }
            if net.node(reader).held() == Mode::NoLock && net.node(reader).pending().is_none() {
                net.acquire(reader, Mode::IntentRead);
                net.deliver_all();
                if net.node(reader).held() == Mode::IntentRead {
                    reader_grants_after_w += 1;
                }
            }
        }
    }
    println!("  writer STILL WAITING after {rounds} reader cycles ({reader_grants_after_w} grants bypassed it)");
    None
}

fn main() {
    println!("With freezing (the paper's protocol):");
    let with = overtakes(ProtocolConfig::paper(), 50);
    assert!(with.is_some(), "freezing guarantees the writer gets in");

    println!("\nWith freezing ablated:");
    let without = overtakes(ProtocolConfig::paper().without(Ablation::Freezing), 50);
    if without.is_none() {
        println!("  -> unbounded overtaking: this is the starvation Rule 6 exists to prevent");
    }
}
