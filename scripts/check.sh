#!/usr/bin/env bash
# Pre-commit gate: formatting, lints, and the tier-1 build+test suite.
# Fully offline — everything below works without network access.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test -q --workspace"
cargo test -q --workspace

echo "==> chaos smoke: seeded lossy-link schedules (DLM_CHAOS_CASES=${DLM_CHAOS_CASES:-4})"
DLM_CHAOS_CASES="${DLM_CHAOS_CASES:-4}" cargo test -q -p dlm-cluster --test chaos

echo "==> model-check gate: check gate (serial/parallel differential + symmetry acceptance)"
cargo run --release -q -p dlm-check --bin check -- gate

echo "==> model-check parallel smoke: two_locks under --symmetry on --workers 2"
cargo run --release -q -p dlm-check --bin check -- \
  scenario two_locks --reduction off --symmetry on --workers 2 --stats

echo "==> request-span smoke: capture + reconstruct a 4-node cluster trace"
cargo run --release -q -p dlm-harness --bin spans -- 4

echo "==> shard-churn smoke: sharded service under pipelined churn (BENCH_SMOKE=1)"
BENCH_SMOKE=1 cargo run --release -q -p bench --bin shard_churn

echo "==> socket-cluster smoke: 3 dlm-node processes over TCP loopback (bounded deadline)"
cargo build --release -q -p dlm-harness --bin dlm-node
cargo run --release -q -p dlm-harness --bin dlm-harness -- --smoke

echo "==> crash-recovery smoke: SIGKILL the token holder of 3 dlm-node processes, audit the recovery (seed ${DLM_CRASH_SEED:-7})"
cargo run --release -q -p dlm-harness --bin dlm-harness -- --crash-smoke "${DLM_CRASH_SEED:-7}"

echo "All checks passed."
