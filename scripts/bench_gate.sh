#!/usr/bin/env bash
# Bench-regression smoke gate: re-measures the protocol churn numbers with a
# BENCH_SMOKE=1 run (the churn section keeps its full budget under smoke, so
# the numbers are comparable with the committed full-budget baseline) and
# fails if churn_ir_ns_per_op regressed more than 25% against the baseline
# committed in BENCH_sim.json.
#
# The baseline is read from git (HEAD), not the working tree, because
# scripts/bench.sh overwrites BENCH_sim.json in place.
#
# Usage: scripts/bench_gate.sh [threshold-percent]   (default 25)
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${1:-25}"
METRIC="churn_ir_ns_per_op"
OUT="$(mktemp -t bench_gate.XXXXXX.json)"
trap 'rm -f "$OUT"' EXIT

extract() { # extract <metric> <file>
  awk -F': ' -v m="\"$1\"" '$0 ~ m { gsub(/[ ,]/, "", $2); print $2 }' "$2"
}

BASELINE_JSON="$(mktemp -t bench_base.XXXXXX.json)"
trap 'rm -f "$OUT" "$BASELINE_JSON"' EXIT
git show HEAD:BENCH_sim.json > "$BASELINE_JSON"
base="$(extract "$METRIC" "$BASELINE_JSON")"
if [[ -z "$base" ]]; then
  echo "bench_gate: no $METRIC in committed BENCH_sim.json; skipping" >&2
  exit 0
fi

limit="$(awk -v b="$base" -v t="$THRESHOLD" 'BEGIN { printf "%.1f", b * (1 + t / 100) }')"

# Two attempts: a shared CI runner can have a noisy neighbour for the first
# measurement; a true regression fails both.
for attempt in 1 2; do
  echo "==> bench_gate: BENCH_SMOKE=1 bench -> $OUT (attempt $attempt)"
  BENCH_SMOKE=1 cargo run --release -q -p bench --bin bench "$OUT" >/dev/null
  new="$(extract "$METRIC" "$OUT")"
  if [[ -z "$new" ]]; then
    echo "bench_gate: smoke run produced no $METRIC" >&2
    exit 1
  fi
  echo "bench_gate: $METRIC baseline=${base}ns new=${new}ns limit=${limit}ns (+${THRESHOLD}%)"
  if awk -v n="$new" -v l="$limit" 'BEGIN { exit !(n <= l) }'; then
    echo "bench_gate: OK"
    exit 0
  fi
done
echo "bench_gate: FAIL — $METRIC regressed ${new}ns > ${limit}ns on both attempts" >&2
exit 1
