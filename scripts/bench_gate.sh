#!/usr/bin/env bash
# Bench-regression smoke gate: re-measures the gated numbers with a
# BENCH_SMOKE=1 run (the churn section keeps its full budget under smoke, so
# the numbers are comparable with the committed full-budget baseline) and
# fails on regressions beyond the threshold against the baseline committed
# in BENCH_sim.json:
#
#   churn_ir_ns_per_op           lower is better   (+threshold% ceiling)
#   check_states_per_sec_serial  higher is better  (-threshold% floor)
#
# The baseline is read from git (HEAD), not the working tree, because
# scripts/bench.sh overwrites BENCH_sim.json in place. A metric missing
# from the committed baseline is skipped (first run after adding one).
#
# Usage: scripts/bench_gate.sh [threshold-percent]   (default 25)
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${1:-25}"
METRIC_LOW="churn_ir_ns_per_op"
METRIC_HIGH="check_states_per_sec_serial"

OUT="$(mktemp -t bench_gate.XXXXXX.json)"
BASELINE_JSON="$(mktemp -t bench_base.XXXXXX.json)"
trap 'rm -f "$OUT" "$BASELINE_JSON"' EXIT

extract() { # extract <metric> <file>
  awk -F': ' -v m="\"$1\"" '$0 ~ m { gsub(/[ ,]/, "", $2); print $2 }' "$2"
}

git show HEAD:BENCH_sim.json > "$BASELINE_JSON"
base_low="$(extract "$METRIC_LOW" "$BASELINE_JSON")"
base_high="$(extract "$METRIC_HIGH" "$BASELINE_JSON")"
if [[ -z "$base_low" && -z "$base_high" ]]; then
  echo "bench_gate: no gated metrics in committed BENCH_sim.json; skipping" >&2
  exit 0
fi

limit_low=""
floor_high=""
if [[ -n "$base_low" ]]; then
  limit_low="$(awk -v b="$base_low" -v t="$THRESHOLD" 'BEGIN { printf "%.1f", b * (1 + t / 100) }')"
fi
if [[ -n "$base_high" ]]; then
  floor_high="$(awk -v b="$base_high" -v t="$THRESHOLD" 'BEGIN { printf "%.1f", b * (1 - t / 100) }')"
fi

# Two attempts: a shared CI runner can have a noisy neighbour for the first
# measurement; a true regression fails both.
for attempt in 1 2; do
  echo "==> bench_gate: BENCH_SMOKE=1 bench -> $OUT (attempt $attempt)"
  BENCH_SMOKE=1 cargo run --release -q -p bench --bin bench "$OUT" >/dev/null
  ok=1
  if [[ -n "$base_low" ]]; then
    new="$(extract "$METRIC_LOW" "$OUT")"
    if [[ -z "$new" ]]; then
      echo "bench_gate: smoke run produced no $METRIC_LOW" >&2
      exit 1
    fi
    echo "bench_gate: $METRIC_LOW baseline=${base_low}ns new=${new}ns limit=${limit_low}ns (+${THRESHOLD}%)"
    awk -v n="$new" -v l="$limit_low" 'BEGIN { exit !(n <= l) }' || ok=0
  fi
  if [[ -n "$base_high" ]]; then
    new="$(extract "$METRIC_HIGH" "$OUT")"
    if [[ -z "$new" ]]; then
      echo "bench_gate: smoke run produced no $METRIC_HIGH" >&2
      exit 1
    fi
    echo "bench_gate: $METRIC_HIGH baseline=${base_high}/s new=${new}/s floor=${floor_high}/s (-${THRESHOLD}%)"
    awk -v n="$new" -v f="$floor_high" 'BEGIN { exit !(n >= f) }' || ok=0
  fi
  if [[ "$ok" == 1 ]]; then
    echo "bench_gate: OK"
    exit 0
  fi
done
echo "bench_gate: FAIL — a gated metric regressed past the threshold on both attempts" >&2
exit 1
