#!/usr/bin/env bash
# Bench-regression smoke gate: re-measures the gated numbers with a
# BENCH_SMOKE=1 run (the churn, cluster-roundtrip, and socket-roundtrip
# sections keep their full budgets under smoke, so the numbers are
# comparable with the committed full-budget baseline) and
# fails on regressions beyond the threshold against the baseline committed
# in BENCH_sim.json:
#
#   lower is better  (+threshold% ceiling):
#     churn_ir_ns_per_op
#     cluster_direct_roundtrip_ns        cluster_reliable_roundtrip_ns
#     cluster_lossy10_roundtrip_ns       cluster_lossy10_wan_rto_roundtrip_ns
#     socket_tcp_roundtrip_ns            socket_udp_lossy_roundtrip_ns
#     recovery_latency_ms
#   higher is better (-threshold% floor):
#     check_states_per_sec_serial        shard_ops_per_sec
#
# The baseline is read from git (HEAD), not the working tree, because
# scripts/bench.sh overwrites BENCH_sim.json in place. A metric missing
# from the committed baseline is skipped (first run after adding one).
#
# Usage: scripts/bench_gate.sh [threshold-percent]   (default 25)
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${1:-25}"
METRICS_LOW="churn_ir_ns_per_op
cluster_direct_roundtrip_ns
cluster_reliable_roundtrip_ns
cluster_lossy10_roundtrip_ns
cluster_lossy10_wan_rto_roundtrip_ns
socket_tcp_roundtrip_ns
socket_udp_lossy_roundtrip_ns
recovery_latency_ms"
METRICS_HIGH="check_states_per_sec_serial shard_ops_per_sec"

OUT="$(mktemp -t bench_gate.XXXXXX.json)"
BASELINE_JSON="$(mktemp -t bench_base.XXXXXX.json)"
trap 'rm -f "$OUT" "$BASELINE_JSON"' EXIT

extract() { # extract <metric> <file>
  awk -F': ' -v m="\"$1\"" '$0 ~ m { gsub(/[ ,]/, "", $2); print $2 }' "$2"
}

git show HEAD:BENCH_sim.json > "$BASELINE_JSON"
any_gated=""
for m in $METRICS_LOW $METRICS_HIGH; do
  if [[ -n "$(extract "$m" "$BASELINE_JSON")" ]]; then
    any_gated=1
  fi
done
if [[ -z "$any_gated" ]]; then
  echo "bench_gate: no gated metrics in committed BENCH_sim.json; skipping" >&2
  exit 0
fi

# Two attempts: a shared CI runner can have a noisy neighbour for the first
# measurement; a true regression fails both.
for attempt in 1 2; do
  echo "==> bench_gate: BENCH_SMOKE=1 bench -> $OUT (attempt $attempt)"
  BENCH_SMOKE=1 cargo run --release -q -p bench --bin bench "$OUT" >/dev/null
  ok=1
  for m in $METRICS_LOW; do
    base="$(extract "$m" "$BASELINE_JSON")"
    if [[ -z "$base" ]]; then
      continue
    fi
    limit="$(awk -v b="$base" -v t="$THRESHOLD" 'BEGIN { printf "%.1f", b * (1 + t / 100) }')"
    new="$(extract "$m" "$OUT")"
    if [[ -z "$new" ]]; then
      echo "bench_gate: smoke run produced no $m" >&2
      exit 1
    fi
    echo "bench_gate: $m baseline=${base} new=${new} limit=${limit} (+${THRESHOLD}%)"
    awk -v n="$new" -v l="$limit" 'BEGIN { exit !(n <= l) }' || ok=0
  done
  for m in $METRICS_HIGH; do
    base="$(extract "$m" "$BASELINE_JSON")"
    if [[ -z "$base" ]]; then
      continue
    fi
    floor="$(awk -v b="$base" -v t="$THRESHOLD" 'BEGIN { printf "%.1f", b * (1 - t / 100) }')"
    new="$(extract "$m" "$OUT")"
    if [[ -z "$new" ]]; then
      echo "bench_gate: smoke run produced no $m" >&2
      exit 1
    fi
    echo "bench_gate: $m baseline=${base}/s new=${new}/s floor=${floor}/s (-${THRESHOLD}%)"
    awk -v n="$new" -v f="$floor" 'BEGIN { exit !(n >= f) }' || ok=0
  done
  if [[ "$ok" == 1 ]]; then
    echo "bench_gate: OK"
    exit 0
  fi
done
echo "bench_gate: FAIL — a gated metric regressed past the threshold on both attempts" >&2
exit 1
