#!/usr/bin/env bash
# Benchmark harness: smoke-runs the Criterion suites (shim: each prints its
# median ns/iter) and regenerates the persisted baseline `BENCH_sim.json`
# at the repo root.
#
# Usage: scripts/bench.sh [--full]
#   default   smoke mode: shrunken budgets, suitable for CI (~a minute)
#   --full    full budgets, for refreshing the committed baseline numbers
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=1
if [[ "${1:-}" == "--full" ]]; then
  SMOKE=0
fi

echo "==> cargo build --release -p bench (benches + baseline binary)"
cargo build --release -p bench --benches --bins

echo "==> criterion suites (protocol, codec, sim, figures)"
cargo bench -q -p bench

if [[ "$SMOKE" == "1" ]]; then
  echo "==> baseline: BENCH_SMOKE=1 bench -> BENCH_sim.json (smoke budgets)"
  BENCH_SMOKE=1 cargo run --release -q -p bench --bin bench
else
  echo "==> baseline: bench -> BENCH_sim.json (full budgets)"
  cargo run --release -q -p bench --bin bench
fi

echo "Benchmarks complete; baseline written to BENCH_sim.json."
